package aes

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/hypercall"
	"repro/internal/wasp"
)

// This file is the §6.4 experiment: `openssl speed -evp aes-128-cbc`
// with the block cipher running natively versus in virtine context.
//
// Cost model: native OpenSSL uses AES-NI, so in-virtine and native
// encryption compute is charged at the hardware-accelerated rate below;
// the Go implementation above supplies correctness. The virtine version
// pays, per invocation, the full snapshot-restore of its ~21 KB image
// (§6.4: "virtine creation in this example is memory bound, since copying
// the snapshot comprises the dominant cost") plus the data-in/data-out
// hypercalls.

// AESNICyclesPerByteNum/Den encode ≈0.2 cycles/byte for pipelined
// AES-128-CBC on a modern core with AES-NI.
const (
	aesniNum = 2
	aesniDen = 10
)

// ComputeCost returns the modelled AES-NI compute cost for n bytes.
func ComputeCost(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(n)*aesniNum/aesniDen + 40 // +40: key schedule amortized
}

// OpenSSLImagePad pads the virtine image to the paper's ~21 KB OpenSSL
// virtine image size.
const OpenSSLImagePad = 21 << 10

// VirtineCipher runs AES-128-CBC encryption inside a virtine per
// invocation, with snapshotting — the modified libopenssl of §6.4.
type VirtineCipher struct {
	W     *wasp.Wasp
	img   *guest.Image
	pol   hypercall.Policy
	key   []byte
	iv    []byte
	cache *Cipher
}

// NewVirtineCipher builds the virtine-backed cipher.
func NewVirtineCipher(w *wasp.Wasp, key, iv []byte) (*VirtineCipher, error) {
	c, err := New(key)
	if err != nil {
		return nil, err
	}
	vc := &VirtineCipher{
		W:     w,
		pol:   hypercall.MaskOf(hypercall.NrGetData, hypercall.NrReturnData),
		key:   append([]byte(nil), key...),
		iv:    append([]byte(nil), iv...),
		cache: c,
	}
	native := func(a any) error {
		n := a.(*wasp.NativeCtx)
		if n.Restored() == nil {
			// Key schedule + cipher context allocation happen once,
			// captured in the snapshot.
			n.Charge(1200)
			n.TakeSnapshot("ctx")
		}
		buf := uint64(guest.HeapBase)
		got, err := n.Hypercall(hypercall.NrGetData, buf, 1<<20)
		if err != nil {
			return err
		}
		mem := n.Mem()
		src := append([]byte(nil), mem[buf:buf+got]...)
		dst := make([]byte, len(src))
		if err := vc.cache.EncryptCBC(dst, src, vc.iv); err != nil {
			return err
		}
		copy(mem[buf:], dst)
		n.Charge(ComputeCost(len(src)))
		if _, err := n.Hypercall(hypercall.NrReturnData, buf, got); err != nil {
			return err
		}
		_, err = n.Hypercall(hypercall.NrExit, 0)
		return err
	}
	img := guest.NativeBootStub("openssl-aes128", native, 0)
	img.Pad = OpenSSLImagePad
	vc.img = img
	return vc, nil
}

// Encrypt encrypts src in a fresh virtine, returning ciphertext and
// advancing clk by the invocation cost.
func (vc *VirtineCipher) Encrypt(src []byte, clk *cycles.Clock) ([]byte, error) {
	if len(src)%BlockSize != 0 {
		return nil, fmt.Errorf("aes: input not block-aligned")
	}
	env := hypercall.NewEnv()
	env.DataIn = src
	res, err := vc.W.Run(vc.img, wasp.RunConfig{
		Policy:   vc.pol,
		Env:      env,
		Snapshot: true,
	}, clk)
	if err != nil {
		return nil, err
	}
	return res.DataOut, nil
}

// NativeEncrypt is the baseline: the same encryption with only the
// modelled compute cost (plus buffer traffic) charged.
func NativeEncrypt(c *Cipher, src, iv []byte, clk *cycles.Clock) ([]byte, error) {
	dst := make([]byte, len(src))
	if err := c.EncryptCBC(dst, src, iv); err != nil {
		return nil, err
	}
	clk.Advance(ComputeCost(len(src)))
	return dst, nil
}

// SpeedPoint is one row of the `openssl speed` output.
type SpeedPoint struct {
	BlockBytes int
	// Throughput in bytes per virtual second.
	NativeBps  float64
	VirtineBps float64
	Slowdown   float64
}

// Speed runs the §6.4 benchmark: for each block size, encrypt repeatedly
// for `iters` invocations natively and in virtines, and report
// throughput.
func Speed(w *wasp.Wasp, blockSizes []int, iters int) ([]SpeedPoint, error) {
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	c, err := New(key)
	if err != nil {
		return nil, err
	}
	vc, err := NewVirtineCipher(w, key, iv)
	if err != nil {
		return nil, err
	}
	var out []SpeedPoint
	for _, bs := range blockSizes {
		src := make([]byte, bs)
		for i := range src {
			src[i] = byte(i)
		}
		nclk := cycles.NewClock()
		for i := 0; i < iters; i++ {
			if _, err := NativeEncrypt(c, src, iv, nclk); err != nil {
				return nil, err
			}
		}
		vclk := cycles.NewClock()
		for i := 0; i < iters; i++ {
			if _, err := vc.Encrypt(src, vclk); err != nil {
				return nil, err
			}
		}
		total := float64(bs * iters)
		nSec := float64(nclk.Now()) / cycles.Frequency
		vSec := float64(vclk.Now()) / cycles.Frequency
		out = append(out, SpeedPoint{
			BlockBytes: bs,
			NativeBps:  total / nSec,
			VirtineBps: total / vSec,
			Slowdown:   float64(vclk.Now()) / float64(nclk.Now()),
		})
	}
	return out, nil
}
