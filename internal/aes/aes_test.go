package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/wasp"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFIPS197Vector(t *testing.T) {
	// FIPS-197 Appendix B.
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.DecryptBlock(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt = %x, want %x", back, pt)
	}
}

func TestNISTCBCVector(t *testing.T) {
	// NIST SP 800-38A F.2.1 CBC-AES128.Encrypt.
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	iv := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	want := unhex(t, "7649abac8119b246cee98e9b12e9197d"+
		"5086cb9b507219ee95db113a917678b2"+
		"73bed6b8e3c1743b7116e69e22229516"+
		"3ff1caa1681fac09120eca307586e1a7")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(pt))
	if err := c.EncryptCBC(got, pt, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CBC encrypt mismatch:\n got %x\nwant %x", got, want)
	}
	back := make([]byte, len(pt))
	if err := c.DecryptCBC(back, got, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("CBC round trip failed")
	}
}

func TestEncryptDecryptProperty(t *testing.T) {
	c, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(block [16]byte) bool {
		var ct, back [16]byte
		c.EncryptBlock(ct[:], block[:])
		c.DecryptBlock(back[:], ct[:])
		return back == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCBCPropagates(t *testing.T) {
	// Flipping one plaintext bit must change every subsequent block.
	c, _ := New([]byte("0123456789abcdef"))
	iv := []byte("fedcba9876543210")
	pt := make([]byte, 64)
	ct1 := make([]byte, 64)
	ct2 := make([]byte, 64)
	if err := c.EncryptCBC(ct1, pt, iv); err != nil {
		t.Fatal(err)
	}
	pt[0] ^= 1
	if err := c.EncryptCBC(ct2, pt, iv); err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 4; blk++ {
		if bytes.Equal(ct1[blk*16:(blk+1)*16], ct2[blk*16:(blk+1)*16]) {
			t.Fatalf("block %d unchanged after plaintext flip", blk)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	c, _ := New([]byte("0123456789abcdef"))
	if err := c.EncryptCBC(make([]byte, 15), make([]byte, 15), make([]byte, 16)); err == nil {
		t.Fatal("non-aligned CBC accepted")
	}
	if err := c.EncryptCBC(make([]byte, 16), make([]byte, 16), make([]byte, 8)); err == nil {
		t.Fatal("short IV accepted")
	}
}

func TestVirtineCipherMatchesNative(t *testing.T) {
	w := wasp.New()
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	vc, err := NewVirtineCipher(w, key, iv)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(key)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i * 7)
	}
	want := make([]byte, len(src))
	if err := c.EncryptCBC(want, src, iv); err != nil {
		t.Fatal(err)
	}
	got, err := vc.Encrypt(src, cycles.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("virtine ciphertext differs from native")
	}
}

func TestSpeedShape(t *testing.T) {
	// §6.4's structural claims: the virtine is slower; the slowdown
	// shrinks as the block grows (fixed snapshot-copy amortized); at
	// 16 KB the slowdown is roughly the paper's ~17x (we accept 8-35x).
	w := wasp.New()
	pts, err := Speed(w, []int{64, 1024, 16384}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatal("missing points")
	}
	for _, p := range pts {
		if p.Slowdown <= 1 {
			t.Fatalf("virtine faster than native at %d bytes?!", p.BlockBytes)
		}
	}
	if !(pts[0].Slowdown > pts[1].Slowdown && pts[1].Slowdown > pts[2].Slowdown) {
		t.Fatalf("slowdown not amortizing: %v %v %v", pts[0].Slowdown, pts[1].Slowdown, pts[2].Slowdown)
	}
	if s := pts[2].Slowdown; s < 8 || s > 35 {
		t.Fatalf("16KB slowdown = %.1fx, want ≈17x (8-35x band)", s)
	}
}
