package vmm

import "repro/internal/cycles"

// Platform abstracts the hosted-hypervisor interface Wasp drives (Fig 5):
// on Linux the KVM API via ioctl(KVM_RUN); on Windows the Hyper-V
// platform API via WHvRunVirtualProcessor. The paper reports "Hyper-V
// performance was similar for our experiments"; the two backends differ
// only in their per-operation costs here, and everything above the VMM —
// Wasp, policies, snapshots, the toolchain — is backend-agnostic, exactly
// as Fig 5 draws it.
type Platform interface {
	Name() string
	// CreateCost is VM + vCPU + memory-slot construction.
	CreateCost() uint64
	// EntryCost is one run call down to guest entry.
	EntryCost() uint64
	// ExitCost is one guest exit back to the VMM.
	ExitCost() uint64
}

// KVM is the Linux backend: /dev/kvm, KVM_CREATE_VM, ioctl(KVM_RUN).
type KVM struct{}

// Name implements Platform.
func (KVM) Name() string { return "kvm" }

// CreateCost implements Platform.
func (KVM) CreateCost() uint64 { return cycles.KVMCreateVM }

// EntryCost implements Platform.
func (KVM) EntryCost() uint64 { return cycles.VMRunEntry }

// ExitCost implements Platform.
func (KVM) ExitCost() uint64 { return cycles.VMExit }

// HyperV is the Windows backend: WHvCreatePartition,
// WHvRunVirtualProcessor. Same order of magnitude as KVM with slightly
// heavier transitions (the WHP API crosses an extra abstraction layer).
type HyperV struct{}

// Name implements Platform.
func (HyperV) Name() string { return "hyper-v" }

// CreateCost implements Platform.
func (HyperV) CreateCost() uint64 { return cycles.HVCreatePartition }

// EntryCost implements Platform.
func (HyperV) EntryCost() uint64 { return cycles.HVRunEntry }

// ExitCost implements Platform.
func (HyperV) ExitCost() uint64 { return cycles.HVExit }

// Paravirt is a synthetic paravirtualized backend with the Fig 5
// trade-off inverted: context construction pre-builds shared rings and
// pinned mappings (expensive create), and guest entry/exit then rides a
// doorbell instead of a full world switch (cheap transitions). It
// exists so the placement cost model faces a genuinely non-dominated
// choice — KVM wins quiet images, Paravirt wins chatty ones — instead
// of a strictly-ordered KVM/Hyper-V pair.
type Paravirt struct{}

// Name implements Platform.
func (Paravirt) Name() string { return "paravirt" }

// CreateCost implements Platform.
func (Paravirt) CreateCost() uint64 { return cycles.PVCreateCtx }

// EntryCost implements Platform.
func (Paravirt) EntryCost() uint64 { return cycles.PVRunEntry }

// ExitCost implements Platform.
func (Paravirt) ExitCost() uint64 { return cycles.PVExit }

// DefaultPlatform is the backend Create uses.
var DefaultPlatform Platform = KVM{}

// ByName resolves a built-in platform by its Name (the identity the
// placement and scheduling layers key on).
func ByName(name string) (Platform, bool) {
	switch name {
	case KVM{}.Name():
		return KVM{}, true
	case HyperV{}.Name():
		return HyperV{}, true
	case Paravirt{}.Name():
		return Paravirt{}, true
	}
	return nil, false
}
