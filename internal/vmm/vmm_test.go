package vmm

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// haltImage is a one-instruction real-mode guest.
var haltCode = []byte{byte(isa.HLT)}

func TestCreateChargesCreation(t *testing.T) {
	clk := cycles.NewClock()
	ctx := Create(64<<10, clk)
	if clk.Now() < cycles.KVMCreateVM {
		t.Fatalf("creation cost %d below KVM_CREATE_VM", clk.Now())
	}
	if len(ctx.Mem) != 64<<10 {
		t.Fatal("memory size wrong")
	}
	// EPT build is charged per page.
	withoutEPT := uint64(cycles.KVMCreateVM)
	pages := uint64((64 << 10) / PageSize)
	if clk.Now() != withoutEPT+pages*cycles.EPTBuildPerPage {
		t.Fatalf("EPT accounting off: %d", clk.Now())
	}
}

func TestRunChargesEntryAndExit(t *testing.T) {
	clk := cycles.NewClock()
	ctx := Create(64<<10, clk)
	if err := ctx.Load(haltCode, 0x8000, 0x8000, isa.Mode16); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	ex := ctx.Run(100)
	if ex.Reason != cpu.ExitHalt {
		t.Fatalf("exit = %+v", ex)
	}
	cost := clk.Now() - before
	want := uint64(cycles.VMRunEntry + cycles.InstrBase + cycles.VMExit)
	if cost != want {
		t.Fatalf("run cost = %d, want %d", cost, want)
	}
	if ctx.Entries != 1 || ctx.ExitsHLT != 1 {
		t.Fatal("exit counters wrong")
	}
	if ctx.FirstEntry == 0 {
		t.Fatal("first entry not recorded")
	}
}

func TestLoadRejectsOversizedImage(t *testing.T) {
	ctx := Create(64<<10, cycles.NewClock())
	big := make([]byte, 128<<10)
	if err := ctx.Load(big, 0x8000, 0x8000, isa.Mode16); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestCleanZeroesAndCharges(t *testing.T) {
	clk := cycles.NewClock()
	ctx := Create(64<<10, clk)
	ctx.Mem[100] = 0xAB
	before := clk.Now()
	ctx.Clean()
	if ctx.Mem[100] != 0 {
		t.Fatal("memory not zeroed")
	}
	if clk.Now()-before != cycles.ZeroCost(64<<10) {
		t.Fatal("clean cost wrong")
	}
	if ctx.Entries != 0 || ctx.FirstEntry != 0 {
		t.Fatal("counters not reset")
	}
}

func TestCleanSilentIsFree(t *testing.T) {
	clk := cycles.NewClock()
	ctx := Create(64<<10, clk)
	ctx.Mem[5] = 1
	before := clk.Now()
	ctx.CleanSilent()
	if ctx.Mem[5] != 0 {
		t.Fatal("memory not zeroed")
	}
	if clk.Now() != before {
		t.Fatal("silent clean charged the clock")
	}
}

func TestVMRunRoundTrip(t *testing.T) {
	clk := cycles.NewClock()
	VMRunRoundTrip(clk)
	if clk.Now() != cycles.VMRunEntry+cycles.VMExit {
		t.Fatal("round trip cost wrong")
	}
}

func TestBaselineOrdering(t *testing.T) {
	// Fig 2/8 anchor ordering.
	order := []Baseline{
		BaselineFunction, BaselineVMRun, BaselineSGXECall,
		BaselinePthread, BaselineKVM, BaselineProcess, BaselineSGXCreate,
	}
	for i := 1; i < len(order); i++ {
		if order[i].Cost() <= order[i-1].Cost() {
			t.Fatalf("%v (%d) should cost more than %v (%d)",
				order[i], order[i].Cost(), order[i-1], order[i-1].Cost())
		}
	}
}

func TestBaselineMeasureAdvancesClock(t *testing.T) {
	clk := cycles.NewClock()
	noise := cycles.NewNoise(1)
	samples := BaselinePthread.Measure(clk, noise, 50)
	if len(samples) != 50 {
		t.Fatal("sample count wrong")
	}
	var sum uint64
	for _, s := range samples {
		sum += s
	}
	if clk.Now() != sum {
		t.Fatal("clock does not match sample sum")
	}
	for _, b := range []Baseline{BaselineFunction, BaselinePthread, BaselineProcess,
		BaselineKVM, BaselineVMRun, BaselineSGXCreate, BaselineSGXECall} {
		if b.String() == "baseline?" {
			t.Fatal("missing name")
		}
	}
}

func TestContextIsolation(t *testing.T) {
	// Two contexts never share memory.
	a := Create(64<<10, cycles.NewClock())
	b := Create(64<<10, cycles.NewClock())
	a.Mem[0] = 0xAA
	if b.Mem[0] != 0 {
		t.Fatal("contexts share memory")
	}
}
