package vmm

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/isa"
)

func TestPlatformNames(t *testing.T) {
	if (KVM{}).Name() != "kvm" || (HyperV{}).Name() != "hyper-v" {
		t.Fatal("platform names wrong")
	}
}

func TestHyperVSimilarButHeavier(t *testing.T) {
	// The paper: "Hyper-V performance was similar for our experiments".
	// The backends must be the same order of magnitude, with WHP's extra
	// layer slightly heavier per transition.
	k, h := KVM{}, HyperV{}
	if h.EntryCost() <= k.EntryCost() || h.ExitCost() <= k.ExitCost() || h.CreateCost() <= k.CreateCost() {
		t.Fatal("Hyper-V should be slightly heavier than KVM")
	}
	if h.EntryCost() > 2*k.EntryCost() || h.CreateCost() > 2*k.CreateCost() {
		t.Fatal("Hyper-V should be similar to KVM, not multiples")
	}
}

func TestCreateOnChargesPlatformCosts(t *testing.T) {
	for _, p := range []Platform{KVM{}, HyperV{}} {
		clk := cycles.NewClock()
		ctx := CreateOn(p, 64<<10, clk)
		if ctx.Platform().Name() != p.Name() {
			t.Fatalf("platform not recorded for %s", p.Name())
		}
		want := p.CreateCost() + uint64((64<<10)/PageSize)*cycles.EPTBuildPerPage
		if clk.Now() != want {
			t.Fatalf("%s creation cost %d, want %d", p.Name(), clk.Now(), want)
		}
	}
}

func TestRunUsesPlatformTransitionCosts(t *testing.T) {
	cost := func(p Platform) uint64 {
		clk := cycles.NewClock()
		ctx := CreateOn(p, 64<<10, clk)
		if err := ctx.Load(haltCode, 0x8000, 0x8000, isa.Mode16); err != nil {
			t.Fatal(err)
		}
		before := clk.Now()
		if ex := ctx.Run(10); ex.Reason.String() == "" {
			t.Fatal("bad exit")
		}
		return clk.Now() - before
	}
	kvm := cost(KVM{})
	hv := cost(HyperV{})
	if hv <= kvm {
		t.Fatalf("Hyper-V round trip (%d) should exceed KVM (%d)", hv, kvm)
	}
	if kvm != cycles.VMRunEntry+cycles.InstrBase+cycles.VMExit {
		t.Fatalf("KVM round trip = %d", kvm)
	}
}
