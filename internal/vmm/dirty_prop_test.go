package vmm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// Property test for the cached engine's dirty-span log: over a random
// store corpus — scattered word/byte stores, push/pop traffic and a
// compiled store loop — the batched span log must mark exactly the same
// pages as the legacy engine's immediate per-store reporting, at
// exactly the same virtual-cycle cost.
func TestDirtyBitmapSpanLogMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		var b strings.Builder
		b.WriteString(".bits 64\n_start:\n")
		// Scattered stores across the data region, word and byte sized,
		// some adjacent (coalescing), some descending (backward merge).
		base := uint64(0x80000)
		for i := 0; i < 40; i++ {
			addr := base + uint64(rng.Intn(0x100000))&^7
			fmt.Fprintf(&b, "\tmovi rdi, %#x\n\tmovi rax, %d\n", addr, rng.Intn(1<<30))
			if rng.Intn(3) == 0 {
				b.WriteString("\tstoreb [rdi], rax\n")
			} else {
				b.WriteString("\tstore [rdi], rax\n")
			}
			if rng.Intn(2) == 0 {
				// Adjacent follow-up store in a random direction.
				fmt.Fprintf(&b, "\tmovi rdi, %#x\n\tstore [rdi], rax\n",
					addr+8-uint64(rng.Intn(2))*16)
			}
		}
		// A store loop: iterated enough to compile a trace, so the
		// fused store closures' dirty reporting is exercised too.
		stride := uint64(8 + 8*rng.Intn(600))
		fmt.Fprintf(&b, `
	movi rcx, %d
	movi rdi, %#x
loop:
	store [rdi], rcx
	add rdi, %d
	push rcx
	pop rbx
	dec rcx
	jnz loop
	hlt
`, 16+rng.Intn(48), base, stride)
		src := b.String()

		exec := func(legacy bool) (*Context, uint64) {
			p, err := asm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			clk := cycles.NewClock()
			ctx := Create(2<<20, clk)
			if err := ctx.Load(p.Code, p.Origin, p.Entry, isa.Mode64); err != nil {
				t.Fatal(err)
			}
			ctx.CPU.Legacy = legacy
			// Isolate guest stores: drop the image-load dirt.
			ctx.ClearDirty()
			if ex := ctx.Run(10_000_000); ex.Reason != cpu.ExitHalt {
				t.Fatalf("trial %d legacy=%v: exit %+v", trial, legacy, ex)
			}
			return ctx, clk.Now()
		}
		fast, cyF := exec(false)
		slow, cyL := exec(true)
		if cyF != cyL {
			t.Fatalf("trial %d: cycles diverge: cached %d, legacy %d", trial, cyF, cyL)
		}
		fp, lp := fast.DirtyPages(), slow.DirtyPages()
		if len(fp) != len(lp) {
			t.Fatalf("trial %d: dirty page count diverges: cached %d, legacy %d\ncached: %v\nlegacy: %v",
				trial, len(fp), len(lp), fp, lp)
		}
		for i := range fp {
			if fp[i] != lp[i] {
				t.Fatalf("trial %d: dirty page sets diverge at %d: cached %v, legacy %v",
					trial, i, fp, lp)
			}
		}
		if fast.CPU.Regs != slow.CPU.Regs || fast.CPU.Retired != slow.CPU.Retired {
			t.Fatalf("trial %d: architectural state diverges", trial)
		}
	}
}
