package vmm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// deepCapture is the legacy reference: the deep-copy capture the forest
// replaced — a private full-length buffer with the windows copied in and
// zeros elsewhere.
func deepCapture(mem []byte, windows []Window) []byte {
	out := make([]byte, len(mem))
	for _, w := range windows {
		copy(out[w.Lo:w.Hi], mem[w.Lo:w.Hi])
	}
	return out
}

func randMem(rng *rand.Rand, n int) []byte {
	mem := make([]byte, n)
	// Mixed texture: zero runs (dedupable and skippable), shared
	// constants (dedupable across layers), and unique noise.
	for p := 0; p*PageSize < n; p++ {
		lo := p * PageSize
		hi := lo + PageSize
		if hi > n {
			hi = n
		}
		switch rng.Intn(4) {
		case 0: // zero page
		case 1: // constant page
			for i := lo; i < hi; i++ {
				mem[i] = 0xAB
			}
		default:
			rng.Read(mem[lo:hi])
		}
	}
	return mem
}

// TestLayerCaptureMaterializeMatchesDeepCopy is the forest≡deep-copy
// property at the vmm layer: over random memory corpora, random capture
// windows and random parent chains, materializing a captured layer must
// reproduce the deep-copy capture bit for bit, and per-page fault-ins
// (the COW path) must agree with the deep copy on every page.
func TestLayerCaptureMaterializeMatchesDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := NewPageStore()
	for trial := 0; trial < 40; trial++ {
		memLen := (8 + rng.Intn(24)) * PageSize
		if rng.Intn(3) == 0 {
			memLen += rng.Intn(PageSize) // unaligned tail page
		}

		// A chain of 1..3 layers over evolving memory.
		var parent *Layer
		var layers []*Layer
		depth := 1 + rng.Intn(3)
		mem := randMem(rng, memLen)
		for d := 0; d < depth; d++ {
			foot := PageSize + rng.Intn(memLen-PageSize)
			stack := memLen - rng.Intn(memLen-foot)
			windows := []Window{{0, foot}, {stack, memLen}}
			want := deepCapture(mem, windows)
			l := CaptureLayer(store, parent, mem, windows)
			layers = append(layers, l)

			got := make([]byte, memLen)
			l.MaterializeInto(got)
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d depth %d: materialized layer diverges from deep copy", trial, d)
			}
			// COW-style per-page fault-in over a random dirty set.
			cow := make([]byte, memLen)
			rng.Read(cow)
			ref := append([]byte(nil), cow...)
			for p := 0; p*PageSize < memLen; p++ {
				if rng.Intn(2) == 0 {
					continue // page not dirty: both paths leave it alone
				}
				lo := p * PageSize
				hi := lo + PageSize
				if hi > memLen {
					hi = memLen
				}
				if data := l.PageData(p); data != nil {
					copy(cow[lo:hi], data)
				} else {
					clearRange(cow[lo:hi])
				}
				copy(ref[lo:hi], want[lo:hi])
			}
			if !bytes.Equal(cow, ref) {
				t.Fatalf("trial %d depth %d: per-page fault-in diverges from deep copy", trial, d)
			}

			// Mutate some pages for the next (delta) layer; unchanged
			// pages must dedup against the parent.
			parent = l
			for p := 0; p*PageSize < memLen; p++ {
				switch rng.Intn(5) {
				case 0:
					rng.Read(mem[p*PageSize : min(p*PageSize+PageSize, memLen)])
				case 1:
					clearRange(mem[p*PageSize : min(p*PageSize+PageSize, memLen)])
				}
			}
		}
		for _, l := range layers {
			l.Release()
		}
	}
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("store leaks %d pages after releasing every layer", got)
	}
}

// TestLayerDeltaDedup: a delta captured over an identical base owns
// nothing; changing one page costs one page.
func TestLayerDeltaDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := NewPageStore()
	memLen := 16 * PageSize
	mem := randMem(rng, memLen)
	windows := []Window{{0, memLen}}

	base := CaptureLayer(store, nil, mem, windows)
	clone := CaptureLayer(store, base, mem, windows)
	if clone.OwnedPages() != 0 {
		t.Fatalf("identical clone owns %d pages, want 0", clone.OwnedPages())
	}
	if clone.Digest() != base.Digest() {
		t.Fatal("identical clone digest differs from base")
	}

	before := store.Pages()
	mem[3*PageSize] ^= 0xFF
	delta := CaptureLayer(store, base, mem, windows)
	if delta.OwnedPages() != 1 {
		t.Fatalf("one-page change owns %d pages, want 1", delta.OwnedPages())
	}
	if grown := store.Pages() - before; grown != 1 {
		t.Fatalf("one-page delta grew the store by %d pages", grown)
	}
	if delta.Digest() == base.Digest() {
		t.Fatal("delta digest should differ from base")
	}

	// Zero-override: zeroing a non-zero base page must materialize as
	// zero, not fall through to the base.
	clearRange(mem[3*PageSize : 4*PageSize])
	basePage5 := append([]byte(nil), mem[5*PageSize:6*PageSize]...)
	if allZeroBytes(basePage5) {
		t.Fatal("test setup: page 5 should be non-zero")
	}
	clearRange(mem[5*PageSize : 6*PageSize])
	zo := CaptureLayer(store, base, mem, windows)
	got := make([]byte, memLen)
	zo.MaterializeInto(got)
	if !allZeroBytes(got[5*PageSize : 6*PageSize]) {
		t.Fatal("zero-override page fell through to the base")
	}

	// Refcount lifecycle: dropping the deltas keeps the base's pages;
	// dropping the base frees everything.
	clone.Release()
	delta.Release()
	zo.Release()
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
	if store.Pages() == 0 {
		t.Fatal("base pages freed while base layer alive")
	}
	base.Release()
	if got := store.Pages(); got != 0 {
		t.Fatalf("store leaks %d pages after final release", got)
	}
}

// TestPageStoreSharedAcrossImages: equal pages inserted for different
// layers are stored once.
func TestPageStoreSharedAcrossImages(t *testing.T) {
	store := NewPageStore()
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	k1 := store.Insert(page)
	k2 := store.Insert(page)
	if k1 != k2 {
		t.Fatal("equal content produced different keys")
	}
	if store.Pages() != 1 {
		t.Fatalf("store holds %d pages, want 1", store.Pages())
	}
	if store.DedupHits() != 1 {
		t.Fatalf("dedup hits %d, want 1", store.DedupHits())
	}
	store.Unref(k1)
	if store.Pages() != 1 {
		t.Fatal("page freed while a reference remains")
	}
	store.Unref(k2)
	if store.Pages() != 0 {
		t.Fatal("page leaked after last unref")
	}
}

// TestPageStoreConcurrent hammers one store from many goroutines —
// inserts of overlapping content, refs, unrefs, reads and verifies —
// the -race gate for the shared forest substrate.
func TestPageStoreConcurrent(t *testing.T) {
	store := NewPageStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			page := make([]byte, PageSize)
			var mine []PageKey
			for i := 0; i < 400; i++ {
				// Small content space so goroutines collide on pages.
				for j := range page {
					page[j] = byte(rng.Intn(4))
				}
				key := store.Insert(page)
				mine = append(mine, key)
				if data := store.Data(key); data != nil && !bytes.Equal(data, page) {
					t.Errorf("goroutine %d: read wrong content", g)
					return
				}
				if len(mine) > 16 {
					store.Unref(mine[0])
					mine = mine[1:]
				}
			}
			for _, k := range mine {
				store.Unref(k)
			}
		}(g)
	}
	wg.Wait()
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := store.Pages(); got != 0 {
		t.Fatalf("store leaks %d pages", got)
	}
}

func allZeroBytes(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// TestCapturedViewWindows pins the window composition rules the capture
// path depends on: full coverage, partial pages, and the zero result.
func TestCapturedViewWindows(t *testing.T) {
	mem := make([]byte, 3*PageSize)
	for i := range mem {
		mem[i] = 0x77
	}
	var scratch [PageSize]byte

	// Page 1 fully covered: direct view.
	v := capturedView(mem, 1, []Window{{0, 3 * PageSize}}, &scratch)
	if len(v) != PageSize || v[0] != 0x77 {
		t.Fatal("full-coverage view wrong")
	}
	// Page 1 half covered: composed, zero tail.
	v = capturedView(mem, 1, []Window{{0, PageSize + PageSize/2}}, &scratch)
	if v == nil || v[PageSize/2-1] != 0x77 || v[PageSize/2] != 0 {
		t.Fatal("partial-coverage view wrong")
	}
	// Page 2 uncovered: nil (zero).
	if v = capturedView(mem, 2, []Window{{0, PageSize}}, &scratch); v != nil {
		t.Fatal("uncovered page should be zero")
	}
	// Zero content under full coverage: nil.
	clearRange(mem[:PageSize])
	if v = capturedView(mem, 0, []Window{{0, PageSize}}, &scratch); v != nil {
		t.Fatal("zero page should collapse to nil view")
	}
}
