package vmm

import "repro/internal/cycles"

// Baselines model the execution contexts the paper compares against in
// Fig 2 and Fig 8 but which a portable Go simulator cannot construct for
// real (host threads, processes, SGX enclaves). Each baseline advances the
// caller's clock by the calibrated cost from internal/cycles, optionally
// jittered by a noise source, so baseline series carry the same variance
// structure as measured series.

// Baseline identifies one comparison context.
type Baseline uint8

const (
	BaselineFunction  Baseline = iota // native call+return of a null function
	BaselinePthread                   // pthread_create + pthread_join
	BaselineProcess                   // fork + exec + exit + wait
	BaselineKVM                       // KVM_CREATE_VM + enter + hlt + exit
	BaselineVMRun                     // bare KVM_RUN entry/exit
	BaselineSGXCreate                 // enclave creation (Intel SGX machine)
	BaselineSGXECall                  // ECALL into an existing enclave
)

func (b Baseline) String() string {
	switch b {
	case BaselineFunction:
		return "function"
	case BaselinePthread:
		return "pthread"
	case BaselineProcess:
		return "process"
	case BaselineKVM:
		return "KVM"
	case BaselineVMRun:
		return "vmrun"
	case BaselineSGXCreate:
		return "SGX create"
	case BaselineSGXECall:
		return "SGX ecall"
	}
	return "baseline?"
}

// Cost returns the calibrated creation latency in cycles for one instance
// of the baseline context, the measurement of Fig 2/Fig 8.
func (b Baseline) Cost() uint64 {
	switch b {
	case BaselineFunction:
		return cycles.FuncCall
	case BaselinePthread:
		return cycles.PthreadCreateJoin
	case BaselineProcess:
		return cycles.ProcessSpawn
	case BaselineKVM:
		// Create a VM, enter it, execute hlt, exit: creation plus one
		// round trip plus one retired instruction.
		return cycles.KVMCreateVM + cycles.VMRunEntry + cycles.InstrBase + cycles.VMExit
	case BaselineVMRun:
		return cycles.VMRunEntry + cycles.VMExit
	case BaselineSGXCreate:
		return cycles.SGXCreate
	case BaselineSGXECall:
		return cycles.SGXECall
	}
	return 0
}

// Measure runs trials of the baseline, advancing clk and returning the
// per-trial latencies, jittered by noise when non-nil.
func (b Baseline) Measure(clk *cycles.Clock, noise *cycles.Noise, trials int) []uint64 {
	out := make([]uint64, trials)
	for i := range out {
		c := noise.Jitter(b.Cost())
		clk.Advance(c)
		out[i] = c
	}
	return out
}
