package vmm

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Content-addressed snapshot substrate. A snapshot used to be a private
// deep copy of guest memory per image; with thousands of tenants running
// clones of the same binary, that holds thousands of near-identical
// copies. The PageStore deduplicates snapshot memory at 4 KiB page
// granularity — identical pages across images, tenants and snapshots are
// stored exactly once — and Layer arranges snapshots into
// container-image-style trees: a tenant snapshot references a shared
// base layer and owns only the pages that differ from it.
//
// Invariants:
//
//   - Store pages are immutable. Every writer copies page content into
//     the store on Insert; every reader (restore, COW fault-in, export)
//     copies content out. Nothing — not the cleaner's scrubbing, not a
//     guest, not a host handler — ever holds a writable alias of a store
//     page. Verify re-hashes the store to prove it.
//   - Pages are refcounted: one reference per owning layer entry.
//     Release of the last layer that owns a page frees it.
//   - Layers are immutable after construction and refcounted: one
//     reference per snapshot, per child layer, and per registry entry
//     holding them, plus transient references taken by in-flight
//     restores and exports.

// PageKey identifies one 4 KiB page by content: SHA-256 over the page
// bytes. Collision-free for any realistic store size, so equal keys mean
// equal content and dedup needs no byte comparison.
type PageKey [32]byte

// ZeroKey is the key of the all-zero page. Zero pages are never stored:
// a layer either omits a zero page entirely (base layers, or when the
// parent chain already resolves it to zero) or records ZeroKey to
// override a non-zero parent page.
var ZeroKey = sha256.Sum256(make([]byte, PageSize))

var zeroPage [PageSize]byte

// pageShardCount shards the store's key space so concurrent captures,
// releases and fault-ins on different pages rarely contend. Power of two.
const pageShardCount = 16

// PageStore is an immutable, refcounted, content-hash-keyed store of
// 4 KiB pages, shared by every snapshot layer of one forest. Safe for
// concurrent use.
type PageStore struct {
	shards [pageShardCount]pageShard

	dedupHits atomic.Uint64 // Inserts resolved to an already-stored page
	inserted  atomic.Uint64 // lifetime distinct-page insertions
}

type pageShard struct {
	mu    sync.Mutex
	pages map[PageKey]*storedPage
}

type storedPage struct {
	data []byte // exactly PageSize, immutable
	refs int    // owning layer entries; guarded by the shard mutex
}

// NewPageStore returns an empty shared page store.
func NewPageStore() *PageStore {
	return &PageStore{}
}

func (s *PageStore) shardFor(key PageKey) *pageShard {
	return &s.shards[key[0]&(pageShardCount-1)]
}

// HashPage computes the content key of one page. data shorter than
// PageSize hashes as if zero-padded to a full page, matching how partial
// capture windows are stored.
func HashPage(data []byte) PageKey {
	if len(data) == PageSize {
		return sha256.Sum256(data)
	}
	var buf [PageSize]byte
	copy(buf[:], data)
	return sha256.Sum256(buf[:])
}

// Insert stores one page of content and returns its key, holding one
// reference for the caller. Content equal to an already-stored page
// increments that page's refcount instead of storing again (this is the
// dedup path). All-zero content returns ZeroKey and stores nothing.
// The content is copied; the caller keeps ownership of data.
func (s *PageStore) Insert(data []byte) PageKey {
	if isZeroPage(data) {
		return ZeroKey
	}
	key := HashPage(data)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p := sh.pages[key]; p != nil {
		p.refs++
		s.dedupHits.Add(1)
		return key
	}
	page := make([]byte, PageSize)
	copy(page, data)
	if sh.pages == nil {
		sh.pages = make(map[PageKey]*storedPage)
	}
	sh.pages[key] = &storedPage{data: page, refs: 1}
	s.inserted.Add(1)
	return key
}

// Ref adds one reference to an already-stored page. ZeroKey is a no-op.
func (s *PageStore) Ref(key PageKey) {
	if key == ZeroKey {
		return
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	if p := sh.pages[key]; p != nil {
		p.refs++
	}
	sh.mu.Unlock()
}

// Unref drops one reference; the page is freed when the last owner
// releases it. ZeroKey is a no-op.
func (s *PageStore) Unref(key PageKey) {
	if key == ZeroKey {
		return
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	if p := sh.pages[key]; p != nil {
		p.refs--
		if p.refs <= 0 {
			delete(sh.pages, key)
		}
	}
	sh.mu.Unlock()
}

// Data returns the stored page for key, or nil for ZeroKey or an unknown
// key. The returned slice is the store's immutable backing: callers must
// only copy from it, never write through it.
func (s *PageStore) Data(key PageKey) []byte {
	if key == ZeroKey {
		return nil
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p := sh.pages[key]; p != nil {
		return p.data
	}
	return nil
}

// Pages reports the number of distinct pages currently stored.
func (s *PageStore) Pages() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.pages)
		sh.mu.Unlock()
	}
	return n
}

// Bytes reports the memory held by stored page content.
func (s *PageStore) Bytes() int64 {
	return int64(s.Pages()) * PageSize
}

// DedupHits reports Inserts that were satisfied by an existing page.
func (s *PageStore) DedupHits() uint64 { return s.dedupHits.Load() }

// Inserted reports lifetime distinct-page insertions.
func (s *PageStore) Inserted() uint64 { return s.inserted.Load() }

// Verify re-hashes every stored page and returns an error naming the
// first page whose content no longer matches its key — the tripwire for
// the shared-pages-are-never-mutated-in-place invariant.
func (s *PageStore) Verify() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, p := range sh.pages {
			if HashPage(p.data) != key {
				sh.mu.Unlock()
				return fmt.Errorf("vmm: page store corruption: page %x was mutated in place", key[:8])
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

func isZeroPage(data []byte) bool {
	if len(data) == PageSize {
		return bytes.Equal(data, zeroPage[:])
	}
	for _, b := range data {
		if b != 0 {
			return false
		}
	}
	return true
}

// Window is one half-open byte range [Lo, Hi) of guest memory that a
// snapshot captures; bytes outside every window are zero in the
// snapshot, exactly as the deep-copy capture zero-filled them.
type Window struct{ Lo, Hi int }

// Layer is one node of the snapshot forest: a page table of content
// keys over a fixed guest-memory geometry, layered over an optional
// parent. A layer owns only the pages that differ from its parent
// chain; lookups fault through to the nearest ancestor that owns the
// page, and pages owned nowhere are zero. Layers are immutable after
// construction.
type Layer struct {
	store  *PageStore
	parent *Layer
	pages  map[int]PageKey
	memLen int
	digest [32]byte // over the resolved page table; see computeDigest
	refs   atomic.Int32
}

// LayerPage is one (page index, content key) entry of a layer table.
type LayerPage struct {
	Idx int
	Key PageKey
}

// CaptureLayer snapshots mem's captured windows as a new layer over
// parent (nil for a base layer), holding one reference for the caller
// and one on parent. Only pages whose captured content differs from the
// parent chain's resolution are stored: a tenant clone captured over its
// image's base layer owns just its delta. parent, when non-nil, must
// share mem's geometry.
func CaptureLayer(store *PageStore, parent *Layer, mem []byte, windows []Window) *Layer {
	if parent != nil && parent.memLen != len(mem) {
		panic(fmt.Sprintf("vmm: capture geometry %d over base geometry %d", len(mem), parent.memLen))
	}
	l := &Layer{store: store, parent: parent, pages: make(map[int]PageKey), memLen: len(mem)}
	l.refs.Store(1)
	if parent != nil {
		parent.Retain()
	}
	npages := (len(mem) + PageSize - 1) / PageSize
	var scratch [PageSize]byte
	for p := 0; p < npages; p++ {
		view := capturedView(mem, p, windows, &scratch)
		if view == nil { // captured content is all zero
			if parent.resolve(p) != ZeroKey {
				l.pages[p] = ZeroKey // override a non-zero base page
			}
			continue
		}
		key := HashPage(view)
		if parent.resolve(p) == key {
			continue // identical to the base: the delta does not own it
		}
		l.pages[p] = l.store.Insert(view)
	}
	l.digest = l.computeDigest()
	return l
}

// capturedView returns page p of mem as the capture windows see it: the
// page's bytes where a window covers them, zero elsewhere. It returns
// nil when the captured view is all zero, a direct subslice of mem when
// one window covers the whole page, and a composed copy in scratch
// otherwise.
func capturedView(mem []byte, p int, windows []Window, scratch *[PageSize]byte) []byte {
	lo := p * PageSize
	hi := lo + PageSize
	if hi > len(mem) {
		hi = len(mem)
	}
	covered := 0 // 0 none, 1 partial, 2 full
	for _, w := range windows {
		if w.Hi <= lo || w.Lo >= hi {
			continue
		}
		if w.Lo <= lo && w.Hi >= hi {
			covered = 2
			break
		}
		covered = 1
	}
	switch covered {
	case 0:
		return nil
	case 2:
		if isZeroPage(mem[lo:hi]) {
			return nil
		}
		return mem[lo:hi]
	}
	// Partial coverage: compose captured bytes over zeros.
	for i := range scratch {
		scratch[i] = 0
	}
	nonzero := false
	for _, w := range windows {
		wlo, whi := w.Lo, w.Hi
		if wlo < lo {
			wlo = lo
		}
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			continue
		}
		copy(scratch[wlo-lo:whi-lo], mem[wlo:whi])
		nonzero = true
	}
	if !nonzero || isZeroPage(scratch[:]) {
		return nil
	}
	return scratch[:]
}

// NewLayer builds a layer from an explicit page table — the import path.
// The caller must already hold one store reference per non-zero entry
// (Insert provides it); NewLayer takes ownership of those references,
// holds one layer reference for the caller, and retains parent.
func NewLayer(store *PageStore, parent *Layer, memLen int, pages map[int]PageKey) *Layer {
	l := &Layer{store: store, parent: parent, pages: pages, memLen: memLen}
	if l.pages == nil {
		l.pages = make(map[int]PageKey)
	}
	l.refs.Store(1)
	if parent != nil {
		parent.Retain()
	}
	l.digest = l.computeDigest()
	return l
}

// resolve walks the chain from l upward and returns the key of the
// nearest owner of page p, or ZeroKey when no layer owns it. Safe on a
// nil layer.
func (l *Layer) resolve(p int) PageKey {
	for n := l; n != nil; n = n.parent {
		if key, ok := n.pages[p]; ok {
			return key
		}
	}
	return ZeroKey
}

// PageData returns page p's content as resolved through the layer
// chain, or nil when the page is zero. The returned slice is immutable
// store backing: copy from it, never write through it.
func (l *Layer) PageData(p int) []byte {
	return l.store.Data(l.resolve(p))
}

// MaterializeInto reconstructs the layered snapshot into dst, writing
// exactly min(len(dst), MemLen) bytes — the same window a deep-copy
// restore's copy(dst, snapmem) would write — and zero-filling pages the
// chain does not own.
func (l *Layer) MaterializeInto(dst []byte) {
	n := l.memLen
	if n > len(dst) {
		n = len(dst)
	}
	for lo := 0; lo < n; lo += PageSize {
		hi := lo + PageSize
		if hi > n {
			hi = n
		}
		if data := l.PageData(lo / PageSize); data != nil {
			copy(dst[lo:hi], data)
		} else {
			clearRange(dst[lo:hi])
		}
	}
}

func clearRange(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// MemLen is the guest-memory geometry the layer snapshots.
func (l *Layer) MemLen() int { return l.memLen }

// Parent returns the layer this one is a delta over, nil for a base.
func (l *Layer) Parent() *Layer { return l.parent }

// OwnedPages reports how many page entries this layer itself holds —
// the delta size in pages (zero-override entries included).
func (l *Layer) OwnedPages() int { return len(l.pages) }

// OwnTable returns this layer's own page entries, sorted by index —
// what a delta export ships.
func (l *Layer) OwnTable() []LayerPage {
	out := make([]LayerPage, 0, len(l.pages))
	for p, key := range l.pages {
		out = append(out, LayerPage{Idx: p, Key: key})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Idx < out[j].Idx })
	return out
}

// ResolvedTable returns the chain-resolved page table, sorted by index,
// with zero pages omitted — what a self-contained export ships.
func (l *Layer) ResolvedTable() []LayerPage {
	npages := (l.memLen + PageSize - 1) / PageSize
	var out []LayerPage
	for p := 0; p < npages; p++ {
		if key := l.resolve(p); key != ZeroKey {
			out = append(out, LayerPage{Idx: p, Key: key})
		}
	}
	return out
}

// Digest identifies the layer's resolved content: two layers with equal
// digests materialize identical memory. Import uses it to decide whether
// a shipped delta can graft onto a local base.
func (l *Layer) Digest() [32]byte { return l.digest }

// computeDigest hashes the geometry and the resolved non-zero page
// table. Zero-override entries resolve to ZeroKey and are skipped, so a
// delta that zeroes a page and a base that never had it digest alike.
func (l *Layer) computeDigest() [32]byte {
	h := sha256.New()
	var buf [8]byte
	putU64(buf[:], uint64(l.memLen))
	h.Write(buf[:])
	for _, e := range l.ResolvedTable() {
		putU64(buf[:], uint64(e.Idx))
		h.Write(buf[:])
		h.Write(e.Key[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Retain adds one reference — a snapshot, registry entry, child layer,
// or in-flight restore/export now depends on this layer.
func (l *Layer) Retain() {
	if l == nil {
		return
	}
	l.refs.Add(1)
}

// Release drops one reference. The last release returns the layer's
// owned pages to the store and releases its parent, so dropping every
// snapshot of a tenant frees exactly that tenant's delta while the
// shared base stays for its other owners.
func (l *Layer) Release() {
	if l == nil {
		return
	}
	if l.refs.Add(-1) > 0 {
		return
	}
	for _, key := range l.pages {
		l.store.Unref(key)
	}
	l.parent.Release()
}
