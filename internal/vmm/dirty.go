package vmm

import "math/bits"

// Dirty-page tracking supports the copy-on-write virtine reset that §7.2
// anticipates ("We expect this cost to drop when using copy-on-write
// mechanisms to reset a virtine, as in SEUSS"): instead of memcpy-ing the
// whole snapshot on every restore, the VMM tracks which guest pages were
// written since the last restore point and copies only those back.
//
// The bitmap is maintained by the vCPU (guest stores) and by Wasp (host
// writes into guest memory: image loads, argument marshalling, hypercall
// handler writes). One bit per 4 KiB page.

// initDirty sizes the bitmap for the context's memory.
func (c *Context) initDirty() {
	pages := (len(c.Mem) + PageSize - 1) / PageSize
	c.dirty = make([]uint64, (pages+63)/64)
}

// HostWrite records a host-side write into guest memory (image loads,
// argument marshalling, hypercall handler writes): it flushes the vCPU's
// decoded-code cache for exactly the touched pages, then marks the pages
// dirty. Guest stores do not come through here — the CPU's own store
// paths invalidate before the OnStore hook fires, so they pay the bitmap
// update (MarkDirty) only.
func (c *Context) HostWrite(addr uint64, n int) {
	if n <= 0 {
		return
	}
	c.CPU.InvalidateCode(addr, n)
	c.MarkDirty(addr, n)
}

// MarkDirty records that [addr, addr+n) was written. Code-cache
// invalidation is the writer's responsibility (the CPU's store paths do
// it themselves; host writers use HostWrite).
func (c *Context) MarkDirty(addr uint64, n int) {
	if n <= 0 || c.dirty == nil {
		return
	}
	first := addr / PageSize
	last := (addr + uint64(n) - 1) / PageSize
	for p := first; p <= last; p++ {
		w := p / 64
		if int(w) >= len(c.dirty) {
			break
		}
		if c.dirty[w] == ^uint64(0) {
			// Fully-dirty word: skip straight to the next word.
			p = (w+1)*64 - 1
			continue
		}
		c.dirty[w] |= 1 << (p % 64)
	}
}

// ClearDirty resets the bitmap (a new restore point).
func (c *Context) ClearDirty() {
	for i := range c.dirty {
		c.dirty[i] = 0
	}
}

// DirtyPages returns the indices of dirty pages, ascending. The output is
// presized from a popcount pass so the append loop never reallocates.
func (c *Context) DirtyPages() []int {
	n := c.DirtyCount()
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for w, word := range c.dirty {
		for ; word != 0; word &= word - 1 {
			out = append(out, w*64+bits.TrailingZeros64(word))
		}
	}
	return out
}

// DirtyCount returns the number of dirty pages.
func (c *Context) DirtyCount() int {
	n := 0
	for _, word := range c.dirty {
		n += bits.OnesCount64(word)
	}
	return n
}
