package vmm

// Dirty-page tracking supports the copy-on-write virtine reset that §7.2
// anticipates ("We expect this cost to drop when using copy-on-write
// mechanisms to reset a virtine, as in SEUSS"): instead of memcpy-ing the
// whole snapshot on every restore, the VMM tracks which guest pages were
// written since the last restore point and copies only those back.
//
// The bitmap is maintained by the vCPU (guest stores) and by Wasp (host
// writes into guest memory: image loads, argument marshalling, hypercall
// handler writes). One bit per 4 KiB page.

// initDirty sizes the bitmap for the context's memory.
func (c *Context) initDirty() {
	pages := (len(c.Mem) + PageSize - 1) / PageSize
	c.dirty = make([]uint64, (pages+63)/64)
}

// MarkDirty records that [addr, addr+n) was written.
func (c *Context) MarkDirty(addr uint64, n int) {
	if n <= 0 || c.dirty == nil {
		return
	}
	first := addr / PageSize
	last := (addr + uint64(n) - 1) / PageSize
	for p := first; p <= last; p++ {
		w := p / 64
		if int(w) < len(c.dirty) {
			c.dirty[w] |= 1 << (p % 64)
		}
	}
}

// ClearDirty resets the bitmap (a new restore point).
func (c *Context) ClearDirty() {
	for i := range c.dirty {
		c.dirty[i] = 0
	}
}

// DirtyPages returns the indices of dirty pages, ascending.
func (c *Context) DirtyPages() []int {
	var out []int
	for w, bits := range c.dirty {
		if bits == 0 {
			continue
		}
		for b := 0; b < 64; b++ {
			if bits&(1<<b) != 0 {
				out = append(out, w*64+b)
			}
		}
	}
	return out
}

// DirtyCount returns the number of dirty pages.
func (c *Context) DirtyCount() int {
	n := 0
	for _, bits := range c.dirty {
		for ; bits != 0; bits &= bits - 1 {
			n++
		}
	}
	return n
}
