// Package vmm is the hosted-hypervisor substrate — the role KVM plays in
// the paper. It owns hardware virtual contexts: per-context guest-physical
// memory, a vCPU, and the nested-paging (EPT) state, and it charges the
// calibrated host-side costs of the KVM interface: VM creation
// (KVM_CREATE_VM + vCPU + memory regions), the KVM_RUN ioctl on every
// entry, and the exit path's ring transitions.
//
// Wasp (internal/wasp) sits on top of this package the way the real Wasp
// sits on /dev/kvm: it creates contexts, loads images, runs them, and
// interposes on every I/O exit.
package vmm

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/isa"
)

// PageSize is the guest page granularity used for EPT accounting.
const PageSize = 4096

// Context is one hardware virtual context (VM + vCPU + EPT), the analogue
// of a KVM VM fd. Contexts are created cold with Create, or recycled from
// a pool by higher layers.
type Context struct {
	Mem   []byte
	CPU   *cpu.CPU
	Clock *cycles.Clock

	// Entries counts guest entries (KVM_RUN calls); Exits counts exits
	// back to the VMM, by reason. FirstEntry is the clock value at the
	// first guest entry of the current run — the zero point for
	// in-guest milestone measurements (Fig 4).
	Entries    uint64
	ExitsIO    uint64
	ExitsHLT   uint64
	FirstEntry uint64

	created  bool
	platform Platform
	dirty    []uint64 // one bit per 4 KiB page written since last restore point
}

// Create allocates a new virtual context on the default platform with
// memBytes of guest-physical memory, charging the cold-creation cost
// (KVM_CREATE_VM, vCPU setup, memory-region registration and EPT
// construction). The clock must belong to the caller's measurement scope.
func Create(memBytes int, clk *cycles.Clock) *Context {
	return CreateOn(DefaultPlatform, memBytes, clk)
}

// CreateOn allocates a new virtual context on an explicit hypervisor
// backend (Fig 5: KVM on Linux, Hyper-V on Windows).
func CreateOn(p Platform, memBytes int, clk *cycles.Clock) *Context {
	clk.Advance(p.CreateCost())
	pages := (memBytes + PageSize - 1) / PageSize
	clk.Advance(uint64(pages) * cycles.EPTBuildPerPage)
	mem := make([]byte, memBytes)
	c := &Context{
		Mem:      mem,
		CPU:      cpu.New(mem, clk, 0),
		Clock:    clk,
		created:  true,
		platform: p,
	}
	c.initDirty()
	c.CPU.OnStore = c.MarkDirty
	return c
}

// Platform reports the backend this context runs on.
func (c *Context) Platform() Platform { return c.platform }

// Clean zeroes the context's guest memory and resets the vCPU, preventing
// information leakage before the shell is reused (Fig 6 step E). It
// charges the zeroing at memcpy bandwidth; callers that clean
// asynchronously account for this off the critical path.
func (c *Context) Clean() {
	for i := range c.Mem {
		c.Mem[i] = 0
	}
	c.Clock.Advance(cycles.ZeroCost(len(c.Mem)))
	c.CPU.Reset(0)
	c.Entries, c.ExitsIO, c.ExitsHLT, c.FirstEntry = 0, 0, 0, 0
}

// CleanSilent zeroes memory and resets the vCPU without charging the
// caller's clock — the accounting a background cleaner thread gets
// (Wasp+CA in Fig 8): the work happens, but not on the critical path.
func (c *Context) CleanSilent() {
	for i := range c.Mem {
		c.Mem[i] = 0
	}
	c.CPU.Reset(0)
	c.Entries, c.ExitsIO, c.ExitsHLT, c.FirstEntry = 0, 0, 0, 0
}

// Load copies a flat binary into guest memory at origin and points the
// vCPU at entry in the given start mode, charging the image copy at
// memcpy bandwidth — this is the image-size cost of Fig 12.
func (c *Context) Load(image []byte, origin, entry uint64, mode isa.Mode) error {
	if int(origin)+len(image) > len(c.Mem) {
		return fmt.Errorf("vmm: image (%d bytes at %#x) exceeds guest memory (%d)", len(image), origin, len(c.Mem))
	}
	copy(c.Mem[origin:], image)
	c.HostWrite(origin, len(image))
	c.Clock.Advance(cycles.MemcpyCost(len(image)))
	c.CPU.Reset(entry)
	c.CPU.OnStore = c.MarkDirty
	switch mode {
	case isa.Mode32:
		c.CPU.SetupProtected()
	case isa.Mode64:
		c.CPU.SetupLongMode()
	}
	return nil
}

// Run enters the guest (one KVM_RUN ioctl) and executes until the next
// exit. The entry cost is charged up front — this is the paper's "vmrun"
// lower bound — and the exit cost is charged when control returns.
func (c *Context) Run(maxSteps uint64) *cpu.Exit {
	c.Clock.Advance(c.platform.EntryCost())
	if c.FirstEntry == 0 {
		c.FirstEntry = c.Clock.Now()
	}
	c.Entries++
	ex := c.CPU.Run(maxSteps)
	c.Clock.Advance(c.platform.ExitCost())
	switch ex.Reason {
	case cpu.ExitIO:
		c.ExitsIO++
	case cpu.ExitHalt:
		c.ExitsHLT++
	}
	return ex
}

// VMRunRoundTrip charges exactly one entry/exit pair with no guest work —
// the "vmrun" measurement in Fig 2: the lowest latency achievable to begin
// execution in a virtual context.
func VMRunRoundTrip(clk *cycles.Clock) {
	clk.Advance(cycles.VMRunEntry)
	clk.Advance(cycles.VMExit)
}
