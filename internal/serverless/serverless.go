// Package serverless implements Vespid, the prototype serverless platform
// of §7.1 (Fig 15): users register JavaScript functions; a concurrent
// server runs each invocation in a distinct virtine via the Wasp runtime
// API — instead of the container per invocation a stock OpenWhisk
// deployment uses. An OpenWhisk-model baseline (calibrated container
// cold/warm-start costs) and a Locust-like burst load generator complete
// the experiment.
//
// The simulation is event-driven over virtual time: each request's
// service cost comes from actually executing the JS virtine (Vespid) or
// from the container cost model (OpenWhisk), and requests queue on a
// bounded worker/container pool exactly as they would on one node.
//
// When the Wasp runtime cleans shells asynchronously (Wasp+CA), the
// platform's virtual scheduler additionally models the background
// cleaner as a dedicated virtual core: every shell a finished
// invocation releases is zeroed on that core's clock, off every request
// path (Vespid.CleanerCycles reports the total moved off-path).
package serverless

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/js"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// Function is one registered serverless action.
type Function struct {
	Name string
	// Payload is the input the generator sends on every invocation.
	Payload []byte
}

// Vespid is the virtine-backed platform.
type Vespid struct {
	W       *wasp.Wasp
	Workers int
	// FrontEndOverhead is the request parse/route cost of the main
	// endpoint (cycles).
	FrontEndOverhead uint64

	vm    *js.VirtineJS
	funcs map[string]*Function

	schedOnce sync.Once
	sched     *sched.Scheduler
}

// NewVespid builds the platform with the given worker parallelism.
func NewVespid(w *wasp.Wasp, workers int) *Vespid {
	return &Vespid{
		W:                w,
		Workers:          workers,
		FrontEndOverhead: 800_000, // ≈0.3 ms: HTTP parse, auth stub, route
		vm:               js.NewVirtineJS(w, true, true),
		funcs:            make(map[string]*Function),
	}
}

// Register installs a function.
func (v *Vespid) Register(f *Function) { v.funcs[f.Name] = f }

// Scheduler returns the platform's dispatch substrate: a virtual-time
// worker pool (internal/sched) as wide as the platform's worker count,
// created on first use. All invocations queue on it, so queueing delay
// under load comes from real scheduler state, not a side model.
func (v *Vespid) Scheduler() *sched.Scheduler {
	v.schedOnce.Do(func() { v.sched = sched.NewVirtual(v.W, v.Workers) })
	return v.sched
}

// CleanerCycles reports the zeroing work the platform's virtual cleaner
// core absorbed — 0 when the runtime cleans synchronously.
func (v *Vespid) CleanerCycles() uint64 {
	if c := v.W.Cleaner(); c != nil {
		return c.BusyCycles()
	}
	return 0
}

// InvokeAt submits one invocation of the named function arriving at the
// given virtual time. The ticket's Start/Done report when a platform
// worker actually served the request; jitter (nil for none) perturbs
// the sampled service cost the way run-to-run noise would.
func (v *Vespid) InvokeAt(name string, arrival uint64, jitter func(uint64) uint64) *sched.Ticket {
	return v.Scheduler().SubmitFnAt(arrival, func(clk *cycles.Clock) (*wasp.Result, error) {
		svc, err := v.ServiceCycles(name)
		if err != nil {
			return nil, err
		}
		if jitter != nil {
			svc = jitter(svc)
		}
		clk.Advance(svc)
		return nil, nil
	})
}

// ServiceCycles executes one invocation for real and reports its cost.
func (v *Vespid) ServiceCycles(name string) (uint64, error) {
	f, ok := v.funcs[name]
	if !ok {
		return 0, fmt.Errorf("vespid: no function %q", name)
	}
	clk := cycles.NewClock()
	if _, err := v.vm.Encode(f.Payload, clk); err != nil {
		return 0, err
	}
	return v.FrontEndOverhead + clk.Now(), nil
}

// OpenWhisk models the stock container-based platform: per-action warm
// container reuse with cold starts on scale-up, as §7.1 describes. It
// deliberately does NOT model SOCK/SEUSS/Catalyzer-class optimizations
// (the paper notes stock OpenWhisk lacks them).
type OpenWhisk struct {
	MaxContainers int
	IdleTimeout   uint64 // cycles before a warm container is reclaimed
	Overhead      uint64 // controller/broker cost per request

	noise *cycles.Noise
	// container free times and last-use times, one per live container.
	freeAt []uint64
	usedAt []uint64
}

// NewOpenWhisk builds the baseline with the given container cap.
func NewOpenWhisk(maxContainers int, seed int64) *OpenWhisk {
	return &OpenWhisk{
		MaxContainers: maxContainers,
		IdleTimeout:   uint64(30) * cycles.Frequency, // 30 s idle reclaim
		Overhead:      32_000_000,                    // ≈12 ms controller path
		noise:         cycles.NewNoise(seed),
	}
}

// invoke returns (start, serviceCycles) for a request arriving at t.
func (o *OpenWhisk) invoke(t uint64) (uint64, uint64) {
	// Reclaim idle containers.
	live := o.freeAt[:0]
	liveUsed := o.usedAt[:0]
	for i, f := range o.freeAt {
		idleSince := f
		if idleSince < t && t-idleSince > o.IdleTimeout {
			continue // reclaimed
		}
		live = append(live, f)
		liveUsed = append(liveUsed, o.usedAt[i])
	}
	o.freeAt, o.usedAt = live, liveUsed

	// Find a warm container that is free at or before t, else the one
	// that frees earliest; spawn cold if below the cap.
	best := -1
	for i, f := range o.freeAt {
		if best < 0 || f < o.freeAt[best] {
			best = i
		}
	}
	service := o.Overhead + o.noise.Jitter(cycles.ContainerWarmStart) + o.noise.Jitter(cycles.NodeJSInvoke)
	if best >= 0 && o.freeAt[best] <= t {
		start := t
		o.freeAt[best] = start + service
		o.usedAt[best] = o.freeAt[best]
		return start, service
	}
	if len(o.freeAt) < o.MaxContainers {
		// Cold start: new container.
		service = o.Overhead + o.noise.Jitter(cycles.ContainerColdStart) + o.noise.Jitter(cycles.NodeJSInvoke)
		start := t
		o.freeAt = append(o.freeAt, start+service)
		o.usedAt = append(o.usedAt, start+service)
		return start, service
	}
	// Queue on the earliest-free warm container.
	start := o.freeAt[best]
	o.freeAt[best] = start + service
	o.usedAt[best] = o.freeAt[best]
	return start, service
}

// LoadPattern is the Locust-style pattern of §7.1: "an initial ramp-up
// period that leads to two bursts, which then ramp down."
type LoadPattern struct {
	DurationSec int
	// UsersAt returns the concurrent-user count at second t.
	UsersAt func(sec int) int
}

// DefaultPattern is the Fig 15 pattern scaled to total seconds.
func DefaultPattern(total int) LoadPattern {
	return LoadPattern{
		DurationSec: total,
		UsersAt: func(sec int) int {
			frac := float64(sec) / float64(total)
			switch {
			case frac < 0.20: // ramp up
				return 2 + int(frac/0.20*18)
			case frac < 0.35: // burst 1
				return 50
			case frac < 0.55: // settle
				return 20
			case frac < 0.70: // burst 2
				return 50
			case frac < 0.85: // settle
				return 20
			default: // ramp down
				return 20 - int((frac-0.85)/0.15*18)
			}
		},
	}
}

// Arrivals expands the pattern into request arrival times (cycles): each
// user issues one request per second (1 s think time), evenly spaced
// within the second.
func (p LoadPattern) Arrivals() []uint64 {
	var out []uint64
	for sec := 0; sec < p.DurationSec; sec++ {
		users := p.UsersAt(sec)
		if users <= 0 {
			continue
		}
		step := uint64(cycles.Frequency) / uint64(users)
		for u := 0; u < users; u++ {
			out = append(out, uint64(sec)*cycles.Frequency+uint64(u)*step)
		}
	}
	return out
}

// TracePoint is one per-second bucket of Fig 15.
type TracePoint struct {
	Sec   int
	Users int
	// Latency percentiles in milliseconds.
	VespidP50, VespidP99 float64
	WhiskP50, WhiskP99   float64
	// Completions per second.
	VespidTput, WhiskTput float64
}

// RunFig15 drives both platforms with the pattern and buckets results
// per second.
func RunFig15(w *wasp.Wasp, pattern LoadPattern, seed int64) ([]TracePoint, error) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	vespid := NewVespid(w, 8)
	vespid.Register(&Function{Name: "b64", Payload: payload})
	// Warm once so the shared snapshot exists (the platform's deploy
	// step), then sample real service costs.
	if _, err := vespid.ServiceCycles("b64"); err != nil {
		return nil, err
	}
	// Pin Wasp+CA accounting before the simulation starts: scrub the
	// warm-up shell on the host lanes, then create the scheduler so it
	// takes drain ownership. The virtual cleaner core's telemetry then
	// covers exactly the simulated invocations, reproducibly — not a
	// race between the background goroutine and the ownership handoff.
	if c := w.Cleaner(); c != nil {
		c.Drain()
	}
	vespid.Scheduler()
	noise := cycles.NewNoise(seed)

	arrivals := pattern.Arrivals()
	whisk := NewOpenWhisk(8, seed+1)

	// Vespid requests queue on the platform's scheduler: each ticket is
	// assigned to the earliest-free worker in virtual time, so queueing
	// delay under the bursts comes from real scheduler state.
	type done struct {
		arrival, completion uint64
	}
	var wDone []done
	tickets := make([]*sched.Ticket, 0, len(arrivals))

	for _, t := range arrivals {
		tickets = append(tickets, vespid.InvokeAt("b64", t, noise.Jitter))

		// OpenWhisk.
		ws, wsvc := whisk.invoke(t)
		wDone = append(wDone, done{t, ws + wsvc})
	}
	if err := sched.WaitAll(tickets...); err != nil {
		return nil, err
	}
	vDone := make([]done, len(tickets))
	for i, tk := range tickets {
		vDone[i] = done{tk.Arrival, tk.Done}
	}

	// Bucket by arrival second.
	buckets := pattern.DurationSec
	vlat := make([][]float64, buckets)
	wlat := make([][]float64, buckets)
	vcomp := make([]int, buckets)
	wcomp := make([]int, buckets)
	for _, d := range vDone {
		sec := int(d.arrival / cycles.Frequency)
		if sec < buckets {
			vlat[sec] = append(vlat[sec], cycles.Millis(d.completion-d.arrival))
		}
		cs := int(d.completion / cycles.Frequency)
		if cs < buckets {
			vcomp[cs]++
		}
	}
	for _, d := range wDone {
		sec := int(d.arrival / cycles.Frequency)
		if sec < buckets {
			wlat[sec] = append(wlat[sec], cycles.Millis(d.completion-d.arrival))
		}
		cs := int(d.completion / cycles.Frequency)
		if cs < buckets {
			wcomp[cs]++
		}
	}

	out := make([]TracePoint, 0, buckets)
	for sec := 0; sec < buckets; sec++ {
		tp := TracePoint{
			Sec:        sec,
			Users:      pattern.UsersAt(sec),
			VespidTput: float64(vcomp[sec]),
			WhiskTput:  float64(wcomp[sec]),
		}
		if len(vlat[sec]) > 0 {
			tp.VespidP50 = stats.Percentile(vlat[sec], 50)
			tp.VespidP99 = stats.Percentile(vlat[sec], 99)
		}
		if len(wlat[sec]) > 0 {
			tp.WhiskP50 = stats.Percentile(wlat[sec], 50)
			tp.WhiskP99 = stats.Percentile(wlat[sec], 99)
		}
		out = append(out, tp)
	}
	return out, nil
}

// --- Multi-tenant noisy-neighbor fairness experiment ---------------------
//
// One hot function ("hog") bursts ~3x the node's capacity while several
// cold tenants trickle small requests through the horizon — the classic
// noisy-neighbor mix the scheduler's admission layer exists for. The
// whole arrival trace is presented to a virtual-mode scheduler as one
// SubmitBatchAt, so the experiment is deterministic, and it runs once
// per dispatch policy (plain FIFO, soft weights, hard cap).

// TenantFairness is one tenant's slice of a fairness run.
type TenantFairness struct {
	Image    string
	Weight   int
	Requests int
	// DoneByHorizon counts the tenant's requests completed within the
	// arrival horizon — the congestion window fairness is judged over.
	DoneByHorizon int
	// DemandCycles is the tenant's total offered service work;
	// ServedCycles the part of it completed within the horizon.
	DemandCycles, ServedCycles uint64
	// P50QueueMs/P99QueueMs reduce the tenant's per-request queueing
	// delay (admission deferral included).
	P50QueueMs, P99QueueMs float64
	// Share is the tenant's entitlement satisfaction in [0,1]:
	// ServedCycles over min(DemandCycles, weighted fair share of the
	// horizon's capacity). A tenant that received everything it was
	// entitled to scores 1 even if it demanded more — a backlogged hog
	// is not a victim of unfairness, only of its own excess.
	Share float64
}

// FairnessReport is one noisy-neighbor run under one dispatch policy.
type FairnessReport struct {
	Config     string
	Workers    int
	HorizonSec int
	Tenants    []TenantFairness // sorted by image name
	// Jain is Jain's fairness index over the tenants' Share values:
	// 1.0 when every tenant got its entitlement, 1/n when one tenant
	// captured everything.
	Jain     float64
	Makespan uint64
	Rejected uint64
}

// noisyNeighborTrace builds the deterministic tenant mix for the given
// horizon: per second, the hog issues 8 bursts of 32 requests at ~47 ms
// each (~3x a 4-worker node's capacity), and each cold tenant issues 16
// requests at ~4 ms. Requests carry seeded jitter, precomputed at trace
// build time so every policy replays the identical workload. The trace
// is sorted by arrival with the hog first at equal instants — the
// backlog position a cold tenant actually finds.
func noisyNeighborTrace(horizonSec int, seed int64) ([]sched.Request, map[string]uint64) {
	const F = uint64(cycles.Frequency)
	noise := cycles.NewNoise(seed)
	demand := make(map[string]uint64)
	var reqs []sched.Request
	add := func(image string, arrival, svc uint64) {
		svc = noise.Jitter(svc)
		demand[image] += svc
		cost := svc
		reqs = append(reqs, sched.Request{
			Arrival: arrival,
			Image:   image,
			Fn: func(clk *cycles.Clock) (*wasp.Result, error) {
				clk.Advance(cost)
				return nil, nil
			},
		})
	}
	for sec := 0; sec < horizonSec; sec++ {
		base := uint64(sec) * F
		for burst := 0; burst < 8; burst++ {
			at := base + uint64(burst)*(F/8)
			for i := 0; i < 32; i++ {
				add("hog", at, F/21) // ~47 ms: 256/s ≈ 3x of 4 workers
			}
		}
	}
	for _, tenant := range []string{"svc-a", "svc-b", "svc-c", "svc-d"} {
		for sec := 0; sec < horizonSec; sec++ {
			base := uint64(sec) * F
			for i := 0; i < 16; i++ {
				add(tenant, base+uint64(i)*(F/16), F/256) // ~4 ms each
			}
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs, demand
}

// RunNoisyNeighbor drives the noisy-neighbor mix through a virtual-mode
// scheduler with the given worker width and admission policy (nil for
// the FIFO baseline) and reduces the outcome to a FairnessReport.
func RunNoisyNeighbor(w *wasp.Wasp, config string, workers, horizonSec int, adm *sched.Admission, seed int64) (*FairnessReport, error) {
	if workers < 1 {
		workers = 4
	}
	if horizonSec < 1 {
		horizonSec = 2
	}
	reqs, demand := noisyNeighborTrace(horizonSec, seed)
	var opts []sched.Option
	if adm != nil {
		opts = append(opts, sched.WithAdmission(*adm))
	}
	s := sched.NewVirtual(w, workers, opts...)
	defer s.Close()
	tickets := s.SubmitBatchAt(reqs)

	horizon := uint64(horizonSec) * uint64(cycles.Frequency)
	capacity := uint64(workers) * horizon
	type acc struct {
		reqs, done int
		served     uint64
		queues     []float64
	}
	byImage := make(map[string]*acc)
	var rejected uint64
	for _, tk := range tickets {
		a := byImage[tk.Image]
		if a == nil {
			a = &acc{}
			byImage[tk.Image] = a
		}
		a.reqs++
		if _, err := tk.Wait(); err != nil {
			if errors.Is(err, sched.ErrAdmission) || errors.Is(err, sched.ErrClosed) {
				rejected++
				continue
			}
			return nil, err
		}
		a.queues = append(a.queues, float64(tk.QueueCycles()))
		if tk.Done <= horizon {
			a.done++
			a.served += tk.ServiceCycles()
		}
	}

	names := make([]string, 0, len(byImage))
	for name := range byImage {
		names = append(names, name)
	}
	sort.Strings(names)
	var weightSum int
	pol := sched.Admission{}
	if adm != nil {
		pol = *adm
	}
	weights := make(map[string]int, len(names))
	for _, name := range names {
		// The exact weights the scheduler enforced, not a reimplementation.
		weights[name] = pol.WeightFor(name)
		weightSum += weights[name]
	}

	rep := &FairnessReport{
		Config:     config,
		Workers:    workers,
		HorizonSec: horizonSec,
		Makespan:   s.Makespan(),
		Rejected:   rejected,
	}
	shares := make([]float64, 0, len(names))
	for _, name := range names {
		a := byImage[name]
		fairShare := float64(capacity) * float64(weights[name]) / float64(weightSum)
		entitled := float64(demand[name])
		if fairShare < entitled {
			entitled = fairShare
		}
		share := 0.0
		if entitled > 0 {
			share = float64(a.served) / entitled
			if share > 1 {
				share = 1
			}
		}
		shares = append(shares, share)
		rep.Tenants = append(rep.Tenants, TenantFairness{
			Image:         name,
			Weight:        weights[name],
			Requests:      a.reqs,
			DoneByHorizon: a.done,
			DemandCycles:  demand[name],
			ServedCycles:  a.served,
			P50QueueMs:    cycles.Millis(uint64(stats.Percentile(a.queues, 50))),
			P99QueueMs:    cycles.Millis(uint64(stats.Percentile(a.queues, 99))),
			Share:         share,
		})
	}
	rep.Jain = stats.Jain(shares)
	return rep, nil
}

// --- Multi-backend placement experiment ----------------------------------
//
// A mixed fleet (KVM and Hyper-V workers under one virtual scheduler)
// serves a saturating mix of short-lived virtines — whose cost is
// dominated by the Fig 5 create/entry/exit overheads, so the backend
// choice matters proportionally — and long-lived ones that amortize
// those overheads over real guest compute. The same trace runs on
// homogeneous half-fleets (only the KVM machines, only the Hyper-V
// machines) and on the full split fleet under each placement policy,
// so the bench table shows both the capacity win of spanning all the
// hardware and the policy differences on the split fleet itself.

// PlacementShortImage is the short-lived virtine of the placement mix:
// a real-mode guest that does a few dozen ALU ops and halts, so one
// entry/exit pair and the (amortized) create cost dominate its run.
func PlacementShortImage() *guest.Image {
	return guest.MustFromAsm("plc-short", `.bits 16
.org 0x8000
_start:
	movi rcx, 24
plc_spin:
	add rax, rcx
	dec rcx
	jnz plc_spin
	hlt
`)
}

// PlacementLongImage is the long-lived virtine: a 64-bit guest that
// boots to long mode and runs a recursive fib — enough retired
// instructions that the per-run hypervisor overhead is noise.
func PlacementLongImage() *guest.Image {
	return guest.MustFromAsm("plc-long", guest.WrapLongMode(`
	movi rdi, 15
	call plc_fib
	hlt
plc_fib:
	cmp rdi, 2
	jge plc_fib_rec
	mov rax, rdi
	ret
plc_fib_rec:
	push rdi
	sub rdi, 1
	call plc_fib
	pop rdi
	push rax
	sub rdi, 2
	call plc_fib
	pop rbx
	add rax, rbx
	ret
`))
}

// BackendSlice is one hypervisor backend's slice of a placement run.
type BackendSlice struct {
	Platform string
	Workers  int
	Runs     uint64
	// ShortRuns counts the short-lived class's runs that landed here —
	// the class a cost-aware policy should steer to the cheap backend.
	ShortRuns uint64
	// SvcCycles is the total service time the backend's workers
	// delivered; Share normalizes it by the backend's capacity share of
	// the fleet (1.0 = exactly its proportional load).
	SvcCycles uint64
	Share     float64
}

// PlacementReport is one fleet configuration's run of the mixed trace.
type PlacementReport struct {
	Config  string
	Workers int
	// Makespan is the virtual time the last worker went idle.
	Makespan uint64
	// ShortP50Ms and LongP50Ms are median arrival→completion latencies
	// per workload class.
	ShortP50Ms, LongP50Ms float64
	// MeanOverhead is the mean per-run cycle cost of the short class —
	// where the backends' Fig 5 profiles actually show.
	MeanShortCycles uint64
	Backends        []BackendSlice
	// Jain is Jain's fairness index over the backends' capacity-
	// normalized service shares: 1.0 when every backend carries exactly
	// its proportional load.
	Jain                float64
	Completed, Rejected uint64
}

// PlacementTrace builds the deterministic mixed arrival trace: shorts
// requests of the short-lived image arriving every 2k cycles and longs
// requests of the long-lived one every 10k — a saturating burst for the
// fleets the experiment compares.
func PlacementTrace(shorts, longs int) []sched.Request {
	short, long := PlacementShortImage(), PlacementLongImage()
	reqs := make([]sched.Request, 0, shorts+longs)
	for i := 0; i < shorts; i++ {
		reqs = append(reqs, sched.Request{Arrival: uint64(i) * 2_000, Img: short})
	}
	for i := 0; i < longs; i++ {
		reqs = append(reqs, sched.Request{Arrival: uint64(i) * 10_000, Img: long})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs
}

// RunPlacementMix drives the mixed short/long trace through a
// virtual-mode scheduler whose workers are pinned round-robin to the
// given fleet platforms, under the given placement policy (nil for
// plain earliest-free dispatch). w must own every fleet platform
// (wasp.WithPlatforms). Fully deterministic: same trace, fleet, and
// policy produce bit-identical schedules.
func RunPlacementMix(w *wasp.Wasp, config string, fleet []vmm.Platform, pl placement.Placer, shorts, longs int) (*PlacementReport, error) {
	if len(fleet) == 0 {
		fleet = w.Platforms()
	}
	opts := []sched.Option{sched.WithWorkerPlatforms(fleet...)}
	if pl != nil {
		opts = append(opts, sched.WithPlacer(pl))
	}
	s := sched.NewVirtual(w, len(fleet), opts...)
	defer s.Close()

	shortName := PlacementShortImage().Name
	tickets := s.SubmitBatchAt(PlacementTrace(shorts, longs))

	rep := &PlacementReport{Config: config, Workers: len(fleet)}
	byPlat := make(map[string]*BackendSlice)
	for _, bl := range s.BackendLoads() {
		sl := &BackendSlice{Platform: bl.Platform, Workers: bl.Workers}
		byPlat[bl.Platform] = sl
	}
	var shortLat, longLat []float64
	var shortCycles, shortRuns uint64
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			if errors.Is(err, sched.ErrPlacement) || errors.Is(err, sched.ErrAdmission) {
				rep.Rejected++
				continue
			}
			return nil, err
		}
		rep.Completed++
		sl := byPlat[tk.Platform]
		sl.Runs++
		sl.SvcCycles += tk.ServiceCycles()
		if tk.Image == shortName {
			sl.ShortRuns++
			shortLat = append(shortLat, float64(tk.Done-tk.Arrival))
			shortCycles += tk.ServiceCycles()
			shortRuns++
		} else {
			longLat = append(longLat, float64(tk.Done-tk.Arrival))
		}
	}
	rep.Makespan = s.Makespan()
	rep.ShortP50Ms = cycles.Millis(uint64(stats.Percentile(shortLat, 50)))
	rep.LongP50Ms = cycles.Millis(uint64(stats.Percentile(longLat, 50)))
	if shortRuns > 0 {
		rep.MeanShortCycles = shortCycles / shortRuns
	}

	var totalSvc uint64
	for _, sl := range byPlat {
		totalSvc += sl.SvcCycles
	}
	names := make([]string, 0, len(byPlat))
	for name := range byPlat {
		names = append(names, name)
	}
	sort.Strings(names)
	var shares []float64
	for _, name := range names {
		sl := byPlat[name]
		if totalSvc > 0 && sl.Workers > 0 {
			capShare := float64(sl.Workers) / float64(len(fleet))
			sl.Share = (float64(sl.SvcCycles) / float64(totalSvc)) / capShare
		}
		shares = append(shares, sl.Share)
		rep.Backends = append(rep.Backends, *sl)
	}
	rep.Jain = stats.Jain(shares)
	return rep, nil
}

// Summary reduces a trace to the headline comparison.
type Summary struct {
	VespidMeanP50, WhiskMeanP50   float64 // ms
	VespidWorstP99, WhiskWorstP99 float64 // ms
	VespidTotal, WhiskTotal       float64 // completed requests
}

// Summarize reduces a Fig 15 trace.
func Summarize(trace []TracePoint) Summary {
	var s Summary
	var vp, wp []float64
	for _, tp := range trace {
		if tp.VespidP50 > 0 {
			vp = append(vp, tp.VespidP50)
		}
		if tp.WhiskP50 > 0 {
			wp = append(wp, tp.WhiskP50)
		}
		if tp.VespidP99 > s.VespidWorstP99 {
			s.VespidWorstP99 = tp.VespidP99
		}
		if tp.WhiskP99 > s.WhiskWorstP99 {
			s.WhiskWorstP99 = tp.WhiskP99
		}
		s.VespidTotal += tp.VespidTput
		s.WhiskTotal += tp.WhiskTput
	}
	s.VespidMeanP50 = stats.Mean(vp)
	s.WhiskMeanP50 = stats.Mean(wp)
	return s
}
