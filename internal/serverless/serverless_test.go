package serverless

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/sched"
	"repro/internal/wasp"
)

func TestVespidServiceCost(t *testing.T) {
	w := wasp.New()
	v := NewVespid(w, 4)
	v.Register(&Function{Name: "b64", Payload: []byte("hello world payload")})
	// First call takes the snapshot; steady-state cost is what matters.
	if _, err := v.ServiceCycles("b64"); err != nil {
		t.Fatal(err)
	}
	c, err := v.ServiceCycles("b64")
	if err != nil {
		t.Fatal(err)
	}
	ms := cycles.Millis(c)
	// Vespid request: front end + snapshot-restored JS virtine — low
	// single-digit ms at most.
	if ms <= 0 || ms > 5 {
		t.Fatalf("vespid service = %.2f ms, want sub-5ms", ms)
	}
}

func TestVespidUnknownFunction(t *testing.T) {
	w := wasp.New()
	v := NewVespid(w, 4)
	if _, err := v.ServiceCycles("nope"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestOpenWhiskColdVsWarm(t *testing.T) {
	o := NewOpenWhisk(4, 7)
	_, cold := o.invoke(0)
	_, warm := o.invoke(cold + 1000)
	if cold <= warm {
		t.Fatalf("cold (%d) should far exceed warm (%d)", cold, warm)
	}
	if cycles.Millis(cold) < 100 {
		t.Fatalf("cold start = %.1f ms, want hundreds of ms", cycles.Millis(cold))
	}
	if cycles.Millis(warm) > 120 {
		t.Fatalf("warm start = %.1f ms, too slow", cycles.Millis(warm))
	}
}

func TestOpenWhiskIdleReclaim(t *testing.T) {
	o := NewOpenWhisk(4, 7)
	_, cold1 := o.invoke(0)
	// After the idle timeout the container is reclaimed: cold again.
	far := cold1 + o.IdleTimeout + uint64(cycles.Frequency)
	_, cold2 := o.invoke(far)
	if cycles.Millis(cold2) < 100 {
		t.Fatalf("expected cold start after idle reclaim, got %.1f ms", cycles.Millis(cold2))
	}
}

func TestOpenWhiskQueuesAtCap(t *testing.T) {
	o := NewOpenWhisk(1, 7)
	s1, svc1 := o.invoke(0)
	s2, _ := o.invoke(1)
	if s2 < s1+svc1 {
		t.Fatal("second request should queue behind the single container")
	}
}

func TestDefaultPatternShape(t *testing.T) {
	p := DefaultPattern(100)
	if p.UsersAt(0) >= p.UsersAt(25) {
		t.Fatal("burst 1 should exceed ramp start")
	}
	if p.UsersAt(25) != 50 || p.UsersAt(65) != 50 {
		t.Fatal("bursts should hit 50 users")
	}
	if p.UsersAt(45) != 20 {
		t.Fatal("settle should be 20 users")
	}
	if p.UsersAt(99) >= 20 {
		t.Fatal("ramp down should fall below settle")
	}
	arr := p.Arrivals()
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestFig15Shape(t *testing.T) {
	w := wasp.New()
	trace, err := RunFig15(w, DefaultPattern(12), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 12 {
		t.Fatalf("trace buckets = %d", len(trace))
	}
	s := Summarize(trace)
	// Fig 15's structural claims: the virtine platform achieves much
	// lower latencies under bursty load than stock OpenWhisk, whose
	// cold starts dominate burst onsets.
	if s.VespidMeanP50 >= s.WhiskMeanP50 {
		t.Fatalf("vespid p50 %.2f ms should beat openwhisk %.2f ms", s.VespidMeanP50, s.WhiskMeanP50)
	}
	if s.VespidWorstP99 >= s.WhiskWorstP99 {
		t.Fatalf("vespid worst p99 %.2f ms should beat openwhisk %.2f ms", s.VespidWorstP99, s.WhiskWorstP99)
	}
	// OpenWhisk's worst p99 should show a cold-start spike (>100 ms).
	if s.WhiskWorstP99 < 100 {
		t.Fatalf("openwhisk p99 = %.1f ms, expected cold-start spike", s.WhiskWorstP99)
	}
	// Vespid stays in low milliseconds.
	if s.VespidMeanP50 > 10 {
		t.Fatalf("vespid mean p50 = %.2f ms, want low single digits", s.VespidMeanP50)
	}
	if s.VespidTotal == 0 || s.WhiskTotal == 0 {
		t.Fatal("no completions recorded")
	}
}

// TestNoisyNeighborFairness: the admission layer's reason to exist.
// Under FIFO the hog's bursts starve the cold tenants (low Jain index,
// seconds of queueing); under equal soft weights every tenant receives
// its entitlement (Jain ≥ 0.9) and cold-tenant p99 queueing collapses
// by orders of magnitude. Virtual mode keeps both runs deterministic.
func TestNoisyNeighborFairness(t *testing.T) {
	fifo, err := RunNoisyNeighbor(wasp.New(), "fifo", 4, 2, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := RunNoisyNeighbor(wasp.New(), "weighted", 4, 2, &sched.Admission{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Jain < 0.9 {
		t.Fatalf("weighted Jain = %.3f, want >= 0.9", fair.Jain)
	}
	if fifo.Jain > fair.Jain-0.1 {
		t.Fatalf("FIFO Jain %.3f not clearly below weighted %.3f", fifo.Jain, fair.Jain)
	}
	cold := func(rep *FairnessReport, image string) TenantFairness {
		for _, tf := range rep.Tenants {
			if tf.Image == image {
				return tf
			}
		}
		t.Fatalf("%s: no tenant %s", rep.Config, image)
		return TenantFairness{}
	}
	for _, image := range []string{"svc-a", "svc-d"} {
		f, w := cold(fifo, image), cold(fair, image)
		if w.P99QueueMs*10 > f.P99QueueMs {
			t.Fatalf("%s: weighted p99 %.1f ms not an order below FIFO %.1f ms",
				image, w.P99QueueMs, f.P99QueueMs)
		}
		if w.DoneByHorizon != w.Requests {
			t.Fatalf("%s: only %d/%d done within horizon under weights",
				image, w.DoneByHorizon, w.Requests)
		}
	}
	if fifo.Rejected != 0 || fair.Rejected != 0 {
		t.Fatalf("rejections without a hard cap: %d/%d", fifo.Rejected, fair.Rejected)
	}
	// Deterministic replay.
	again, err := RunNoisyNeighbor(wasp.New(), "weighted", 4, 2, &sched.Admission{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again.Jain != fair.Jain || again.Makespan != fair.Makespan {
		t.Fatalf("weighted run not reproducible: (%.4f,%d) vs (%.4f,%d)",
			again.Jain, again.Makespan, fair.Jain, fair.Makespan)
	}
}

// TestNoisyNeighborHardCap: a hard in-flight cap also protects the
// cold tenants, at the cost of work conservation for the hog.
func TestNoisyNeighborHardCap(t *testing.T) {
	rep, err := RunNoisyNeighbor(wasp.New(), "hardcap", 4, 2, &sched.Admission{MaxInFlight: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jain < 0.9 {
		t.Fatalf("hard-cap Jain = %.3f, want >= 0.9", rep.Jain)
	}
	for _, tf := range rep.Tenants {
		if tf.Image == "hog" {
			continue
		}
		if tf.P99QueueMs > 200 {
			t.Fatalf("%s: p99 queue %.1f ms under hard cap", tf.Image, tf.P99QueueMs)
		}
	}
}
