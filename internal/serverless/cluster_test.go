package serverless

import (
	"reflect"
	"testing"

	"repro/internal/cycles"
	"repro/internal/sched"
	"repro/internal/wasp"
)

// TestClusterRunDeterministic is the simulation-level determinism gate:
// one config, two fresh fleets, bit-identical reports — including the
// fleet trajectory an autoscaling policy produces.
func TestClusterRunDeterministic(t *testing.T) {
	const F = uint64(cycles.Frequency)
	run := func() *ClusterReport {
		cfg := ClusterConfig{
			Seed:           11,
			InitialWorkers: 2,
			Trace:          ClusterMix(11, 0.25, F),
		}
		rep, err := RunCluster(wasp.New(), &sched.UtilScale{Target: 0.5, Min: 1, Max: 64, Patience: 2}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cluster run not reproducible:\n a: %+v\n b: %+v", a, b)
	}
	if a.Tickets == 0 || a.Epochs == 0 || a.CostWorkerSec == 0 {
		t.Fatalf("degenerate report: %+v", a)
	}
}

// TestClusterLinearMatchesHeap runs the same cluster simulation on the
// heap core and the linear reference: virtual time end to end, so the
// reports must agree bit for bit.
func TestClusterLinearMatchesHeap(t *testing.T) {
	const F = uint64(cycles.Frequency)
	run := func(linear bool) *ClusterReport {
		cfg := ClusterConfig{
			Seed:           7,
			InitialWorkers: 3,
			Linear:         linear,
			Trace:          ClusterMix(7, 0.2, F),
		}
		rep, err := RunCluster(wasp.New(), sched.QueueScale{TargetP99: F / 20, Min: 2, Max: 64}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	lin, hp := run(true), run(false)
	if !reflect.DeepEqual(lin, hp) {
		t.Fatalf("linear and heap cluster reports diverged:\n linear: %+v\n heap:   %+v", lin, hp)
	}
}

// TestClusterAutoscalerReacts pins that an elastic policy actually
// moves the fleet: an overloaded trace must force growth past the
// initial width, and the SLO must beat what the frozen initial fleet
// achieves.
func TestClusterAutoscalerReacts(t *testing.T) {
	const F = uint64(cycles.Frequency)
	trace := UniformTrace(3, "api", 4000, F/8000, ServiceProfile{Base: F / 100, Spread: 0.5})
	base := ClusterConfig{InitialWorkers: 2, Trace: trace}

	frozen, err := RunCluster(wasp.New(), sched.FixedScale{N: 2}, base)
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := RunCluster(wasp.New(), sched.QueueScale{TargetP99: F / 20, Min: 2, Max: 256}, base)
	if err != nil {
		t.Fatal(err)
	}
	if elastic.PeakWorkers <= frozen.PeakWorkers {
		t.Fatalf("queue policy never grew the fleet: peak %d", elastic.PeakWorkers)
	}
	if elastic.ScaleEvents == 0 {
		t.Fatal("elastic run recorded no scale events")
	}
	if elastic.SLOAttained <= frozen.SLOAttained {
		t.Fatalf("elastic fleet should beat the frozen 2-worker SLO: %.3f vs %.3f",
			elastic.SLOAttained, frozen.SLOAttained)
	}
	if elastic.Makespan >= frozen.Makespan {
		t.Fatalf("elastic fleet should finish sooner: %d vs %d", elastic.Makespan, frozen.Makespan)
	}
}
