package serverless

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cycles"
	"repro/internal/sched"
	"repro/internal/wasp"
)

// Trace-driven workload generators for the cluster-scale simulation:
// seeded Poisson arrivals, diurnal rate curves, heavy-tailed service
// times, and flash crowds, beyond the fixed mixes of the earlier
// experiments.
//
// Seed contract (see internal/sched/README.md): every generator is a
// pure function of its arguments — one splitmix64 stream per call,
// consumed in a fixed order (arrival gap, then service draw, per
// ticket), no global state, no wall clock. Same seed, same trace, bit
// for bit; distinct seeds (or the documented per-image seed offsets in
// ClusterMix) give independent streams. Generated requests are Fn
// tasks that advance the serving worker's clock by the drawn service
// cost, tagged with the image name, so million-ticket traces cost the
// host almost nothing beyond the dispatch decisions under test.

// TraceRNG is a splitmix64 PRNG: tiny, fast, and fully determined by
// its seed. It is deliberately not math/rand — the generator's output
// must be stable across Go versions for committed bench baselines.
type TraceRNG struct {
	state uint64
}

// NewTraceRNG seeds a stream.
func NewTraceRNG(seed uint64) *TraceRNG { return &TraceRNG{state: seed} }

// Uint64 returns the next raw draw.
func (r *TraceRNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *TraceRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential draw with the given mean, by inverse CDF.
func (r *TraceRNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) * mean
}

// ServiceProfile draws per-ticket service costs. Base is the minimum
// (and scale) cost in cycles. With TailAlpha > 0 the draw is a bounded
// Pareto(Base, TailAlpha) capped at TailCap — the heavy tail that makes
// p99 provisioning interesting; otherwise the cost is uniform in
// [Base, Base×(1+Spread)].
type ServiceProfile struct {
	Base      uint64
	Spread    float64
	TailAlpha float64
	TailCap   uint64
}

// Draw consumes exactly one rng draw and returns the service cost.
func (p ServiceProfile) Draw(rng *TraceRNG) uint64 {
	if p.TailAlpha > 0 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		v := float64(p.Base) * math.Pow(u, -1/p.TailAlpha)
		if lim := float64(p.TailCap); lim > 0 && v > lim {
			v = lim
		}
		return uint64(v)
	}
	return p.Base + uint64(float64(p.Base)*p.Spread*rng.Float64())
}

// fnRequest builds the standard simulated request: an Fn task that
// advances the worker clock by cost, tagged with the image identity.
func fnRequest(image string, arrival, cost uint64) sched.Request {
	return sched.Request{
		Arrival: arrival,
		Image:   image,
		Fn: func(clk *cycles.Clock) (*wasp.Result, error) {
			clk.Advance(cost)
			return nil, nil
		},
	}
}

// PoissonTrace generates image arrivals as a Poisson process at
// ratePerSec over horizon cycles: independent exponential inter-arrival
// gaps, one service draw per ticket.
func PoissonTrace(seed uint64, image string, ratePerSec float64, horizon uint64, svc ServiceProfile) []sched.Request {
	rng := NewTraceRNG(seed)
	meanGap := float64(cycles.Frequency) / ratePerSec
	var reqs []sched.Request
	at := uint64(rng.Exp(meanGap))
	for at < horizon {
		reqs = append(reqs, fnRequest(image, at, svc.Draw(rng)))
		at += uint64(rng.Exp(meanGap)) + 1
	}
	return reqs
}

// DiurnalTrace generates a Poisson process whose rate follows a daily
// curve compressed into the horizon: rate(t) = base + amp ×
// (1+sin(2πt/period))/2, sampled by thinning against the peak rate —
// the standard way to draw a non-homogeneous Poisson process without
// changing the gap distribution's seed contract. Each candidate
// arrival consumes two draws (gap, thinning), plus one more when
// accepted (service).
func DiurnalTrace(seed uint64, image string, baseRate, ampRate float64, period, horizon uint64, svc ServiceProfile) []sched.Request {
	rng := NewTraceRNG(seed)
	peak := baseRate + ampRate
	meanGap := float64(cycles.Frequency) / peak
	var reqs []sched.Request
	at := uint64(rng.Exp(meanGap))
	for at < horizon {
		phase := 2 * math.Pi * float64(at%period) / float64(period)
		rate := baseRate + ampRate*(1+math.Sin(phase))/2
		if rng.Float64() < rate/peak {
			reqs = append(reqs, fnRequest(image, at, svc.Draw(rng)))
		}
		at += uint64(rng.Exp(meanGap)) + 1
	}
	return reqs
}

// FlashCrowdTrace generates a sparse Poisson background plus `crowds`
// evenly spaced flash crowds: at each crowd, burstSize arrivals land
// within a window one-tenth of the crowd spacing, uniformly — the
// workload autoscalers fail on when they only track averages.
func FlashCrowdTrace(seed uint64, image string, baseRate float64, crowds, burstSize int, horizon uint64, svc ServiceProfile) []sched.Request {
	rng := NewTraceRNG(seed)
	reqs := PoissonTrace(rng.Uint64(), image, baseRate, horizon, svc)
	if crowds < 1 {
		crowds = 1
	}
	spacing := horizon / uint64(crowds+1)
	window := spacing / 10
	if window == 0 {
		window = 1
	}
	for c := 1; c <= crowds; c++ {
		start := spacing * uint64(c)
		for i := 0; i < burstSize; i++ {
			at := start + uint64(float64(window)*rng.Float64())
			reqs = append(reqs, fnRequest(image, at, svc.Draw(rng)))
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs
}

// ClusterMix composes the standard cluster workload the frontier bench
// sweeps: a steady Poisson API tier, a diurnal web tier, a heavy-tailed
// batch tier, and a flash-crowd spike tier, with per-image seed offsets
// off the caller's seed (seed+1 … seed+4 — part of the seed contract).
// scale multiplies every tier's arrival rate; horizon is the trace
// length in cycles. The result is arrival-sorted (stable, so equal
// arrivals keep tier order).
func ClusterMix(seed uint64, scale float64, horizon uint64) []sched.Request {
	const F = uint64(cycles.Frequency)
	var reqs []sched.Request
	reqs = append(reqs, PoissonTrace(seed+1, "api", 120*scale, horizon,
		ServiceProfile{Base: F / 500, Spread: 0.5})...) // ~2-3 ms
	reqs = append(reqs, DiurnalTrace(seed+2, "web", 30*scale, 90*scale, horizon/2, horizon,
		ServiceProfile{Base: F / 200, Spread: 1.0})...) // ~5-10 ms, two "days"
	reqs = append(reqs, PoissonTrace(seed+3, "batch", 6*scale, horizon,
		ServiceProfile{Base: F / 100, TailAlpha: 1.3, TailCap: F / 4})...) // 10 ms, Pareto tail to 250 ms
	reqs = append(reqs, FlashCrowdTrace(seed+4, "spike", 4*scale, 3, int(160*scale), horizon,
		ServiceProfile{Base: F / 400, Spread: 0.3})...) // 3 crowds
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs
}

// UniformTrace generates exactly n tickets at a fixed arrival cadence
// with one service draw each — the dense, regular load the scaling and
// speedup rows use, where the variable under test is the dispatch core,
// not the workload shape.
func UniformTrace(seed uint64, image string, n int, gap uint64, svc ServiceProfile) []sched.Request {
	rng := NewTraceRNG(seed)
	reqs := make([]sched.Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, fnRequest(image, uint64(i)*gap, svc.Draw(rng)))
	}
	return reqs
}

// TraceImages summarizes a trace: per-image ticket counts, in first
// appearance order — a cheap fingerprint for tests and tables.
func TraceImages(reqs []sched.Request) string {
	counts := map[string]int{}
	var names []string
	for _, r := range reqs {
		if counts[r.Image] == 0 {
			names = append(names, r.Image)
		}
		counts[r.Image]++
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", n, counts[n])
	}
	return out
}
