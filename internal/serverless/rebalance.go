package serverless

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// --- Live-rebalancing experiment ------------------------------------------
//
// A tenant's workload profile is not static: a virtine that starts as a
// quiet request handler can turn chatty (every hypercall is a guest
// exit/entry pair), and on a fleet with non-dominated backend profiles
// — KVM's cheap create against Paravirt's cheap transitions — the
// backend that was right at deploy time becomes the wrong one. The
// rebalance experiment drives exactly that drift through the Migrating
// placer: the cost model's per-image entry EWMA follows the drift, the
// placement flips after the hysteresis streak, and the tenant's warm
// snapshot migrates to the new home (wasp.MigrateSnapshot) so the first
// run there already resumes instead of cold-booting. A sticky baseline
// (hysteresis < 0: first preference wins forever) runs the identical
// trace for the comparison the bench table prints.

// DriftImage is the drifting tenant's binary: it snapshots, reads a
// hypercall count from the arg page, issues that many mark hypercalls —
// each one a full guest exit/entry pair — and returns the count. The
// argument is the workload-profile dial: count 2 is a quiet virtine the
// cheap-create backend should own, count 150 a chatty one whose
// entry/exit bill dominates everything else.
func DriftImage() *guest.Image {
	return guest.MustFromAsm("rbl-drift", guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x0
	load rcx, [rbx]
	movi rsi, 0
rbl_spin:
	out 0x0B, rcx
	add rsi, 1
	dec rcx
	jnz rbl_spin
	movi rbx, 0x4000
	store [rbx], rsi
	movi rdi, 0
	out 0x00, rdi
	hlt
`))
}

// Drift-trace shape: the drifting tenant arrives on a steady clock and
// switches its hypercall count mid-trace; a steady quiet image shares
// the fleet so the experiment measures rebalancing under load, not on an
// otherwise idle cluster.
const (
	driftQuietCalls  = 2
	driftChattyCalls = 150
	driftInterval    = 30_000
	steadyInterval   = 15_000
)

// driftArgs little-endian-encodes a hypercall count for the arg page.
func driftArgs(n uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, n)
	return out
}

// RebalanceTrace builds the deterministic drifting-workload trace:
// perPhase quiet runs of the drifting tenant followed by perPhase chatty
// ones (same image, same arrival clock — only the argument drifts), with
// 2×perPhase runs of the steady short image interleaved throughout.
func RebalanceTrace(tenant *guest.Image, perPhase int) []sched.Request {
	steady := PlacementShortImage()
	reqs := make([]sched.Request, 0, 4*perPhase)
	for i := 0; i < 2*perPhase; i++ {
		calls := uint64(driftQuietCalls)
		if i >= perPhase {
			calls = driftChattyCalls
		}
		reqs = append(reqs, sched.Request{
			Arrival: uint64(i) * driftInterval,
			Img:     tenant,
			Cfg:     wasp.RunConfig{Snapshot: true, RetBytes: 8, Args: driftArgs(calls)},
		})
	}
	for i := 0; i < 2*perPhase; i++ {
		reqs = append(reqs, sched.Request{Arrival: uint64(i) * steadyInterval, Img: steady})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	return reqs
}

// RebalanceSlice is one backend's slice of a rebalance run.
type RebalanceSlice struct {
	Platform string
	Workers  int
	Runs     uint64
	// DriftRuns counts the drifting tenant's runs that landed here — the
	// split that shows whether (and when) the placement actually moved.
	DriftRuns uint64
}

// RebalanceReport is one configuration's run of the drifting trace.
type RebalanceReport struct {
	Config  string
	Workers int
	// Makespan is the virtual time the last worker went idle.
	Makespan uint64
	// DriftP50Ms/DriftP99Ms are the drifting tenant's arrival→completion
	// latencies; the p99 is where a stranded chatty tenant shows first.
	DriftP50Ms, DriftP99Ms float64
	// SteadyP50Ms is the bystander image's median latency — rebalancing
	// the drifter must also relieve the backend it abandoned.
	SteadyP50Ms float64
	// Migrations counts committed placement flips; MigratedBytes is the
	// total snapshot wire traffic they shipped, DeltaMigrations how many
	// crossed as base-grafted deltas rather than full snapshots.
	Migrations      uint64
	MigratedBytes   int
	DeltaMigrations uint64
	// FinalHome is the backend the drifting tenant ended committed to.
	FinalHome string
	Backends  []RebalanceSlice
	Completed uint64
}

// RunRebalanceMix drives the drifting-workload trace through a
// virtual-mode split fleet under a Migrating(CostModel) placer with the
// given hysteresis (negative = the sticky baseline). The tenant's base
// binary is pre-warmed on every fleet backend first, so a committed flip
// ships only the tenant's snapshot delta. w must own every fleet
// platform. Fully deterministic: same trace, fleet, and hysteresis
// produce bit-identical reports.
func RunRebalanceMix(w *wasp.Wasp, config string, fleet []vmm.Platform, hysteresis, perPhase int) (*RebalanceReport, error) {
	if len(fleet) == 0 {
		fleet = w.Platforms()
	}
	// Warm the drift binary's base layer on each distinct backend: one
	// captured run per platform, off the fleet's worker clocks. This is
	// the content-distribution step a real deployment does at image push,
	// and it is what lets a later flip ship the tenant as a delta.
	base := DriftImage()
	warmed := map[string]bool{}
	for _, p := range fleet {
		if warmed[p.Name()] {
			continue
		}
		warmed[p.Name()] = true
		warm := base.WithName("rbl-warm-" + p.Name())
		cfg := wasp.RunConfig{Snapshot: true, RetBytes: 8, Args: driftArgs(1)}
		if _, err := w.RunOn(p.Name(), warm, cfg, cycles.NewClock()); err != nil {
			return nil, fmt.Errorf("warming %s: %w", p.Name(), err)
		}
	}

	tenant := base.WithName("rbl-tenant")
	rep := &RebalanceReport{Config: config, Workers: len(fleet)}
	placer := placement.NewMigrating(placement.CostModel{}, hysteresis)
	placer.OnMigrate = func(image, from, to string) {
		shipped, deltaOnly, err := w.MigrateSnapshot(image, from, to)
		if err != nil {
			// A failed migration is not fatal to placement: the new home
			// cold-boots and re-captures (the Migrating contract).
			return
		}
		rep.MigratedBytes += shipped
		if deltaOnly {
			rep.DeltaMigrations++
		}
	}

	s := sched.NewVirtual(w, len(fleet),
		sched.WithWorkerPlatforms(fleet...),
		sched.WithPlacer(placer))
	defer s.Close()

	tickets := s.SubmitBatchAt(RebalanceTrace(tenant, perPhase))

	byPlat := make(map[string]*RebalanceSlice)
	for _, bl := range s.BackendLoads() {
		byPlat[bl.Platform] = &RebalanceSlice{Platform: bl.Platform, Workers: bl.Workers}
	}
	var driftLat, steadyLat []float64
	for i, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			return nil, fmt.Errorf("ticket %d: %w", i, err)
		}
		rep.Completed++
		sl := byPlat[tk.Platform]
		sl.Runs++
		if tk.Image == tenant.Name {
			sl.DriftRuns++
			driftLat = append(driftLat, float64(tk.Done-tk.Arrival))
		} else {
			steadyLat = append(steadyLat, float64(tk.Done-tk.Arrival))
		}
	}
	rep.Makespan = s.Makespan()
	rep.DriftP50Ms = cycles.Millis(uint64(stats.Percentile(driftLat, 50)))
	rep.DriftP99Ms = cycles.Millis(uint64(stats.Percentile(driftLat, 99)))
	rep.SteadyP50Ms = cycles.Millis(uint64(stats.Percentile(steadyLat, 50)))
	rep.Migrations = placer.Migrations()
	rep.FinalHome = placer.Committed(tenant.Name)
	for _, bl := range s.BackendLoads() {
		rep.Backends = append(rep.Backends, *byPlat[bl.Platform])
	}
	return rep, nil
}
