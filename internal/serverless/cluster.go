package serverless

import (
	"fmt"
	"sort"

	"repro/internal/cycles"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wasp"
)

// Cluster-scale capacity planning on the deterministic virtual-time
// scheduler: an epoch-driven simulation loop that feeds a trace through
// the fleet one control interval at a time and lets an autoscaling
// policy resize the virtual fleet — and the pool prewarm target —
// between epochs from the interval's telemetry. Everything is virtual
// cycles, so a sweep over fleet sizes × policies × million-ticket
// traces is bit-reproducible and runs in host seconds: the "millions of
// users without a datacenter" engine the ROADMAP asks for.

// ClusterConfig shapes one simulation run.
type ClusterConfig struct {
	Seed           uint64
	InitialWorkers int
	Epoch          uint64 // control interval in cycles (default: 250 ms)
	SLO            uint64 // end-to-end latency SLO in cycles (default: 50 ms)
	ColdStart      uint64 // boot penalty for growth beyond the prewarmed standby (default: 25 ms)
	Linear         bool   // run the linear reference dispatch core (speedup baselines)
	Trace          []sched.Request
	// Tracer, when non-nil, records the run's full flight: per-ticket
	// service spans on worker lanes, epoch boundaries, every autoscale
	// decision, and the pool/cleaner events underneath. Construct it
	// with obs.Deterministic(true) to keep the recorded stream
	// bit-identical across runs of the same config.
	Tracer *obs.Tracer
}

// ClusterReport is one run's outcome: the SLO side and the cost side of
// the frontier, plus the fleet trajectory.
type ClusterReport struct {
	Policy         string
	InitialWorkers int
	PeakWorkers    int
	FinalWorkers   int
	ScaleEvents    int
	Epochs         int
	Tickets        int
	Rejected       int
	SLOAttained    float64 // fraction of completed tickets inside the SLO
	P50Latency     uint64  // end-to-end, cycles
	P99Latency     uint64
	Makespan       uint64
	CostWorkerSec  float64 // provisioned capacity: (active+standby) worker-seconds
}

func (r *ClusterReport) String() string {
	ms := func(c uint64) float64 { return float64(c) / float64(cycles.Frequency) * 1e3 }
	return fmt.Sprintf("cluster{%s w0=%d peak=%d tickets=%d slo=%.3f p99=%.2fms cost=%.1fws}",
		r.Policy, r.InitialWorkers, r.PeakWorkers, r.Tickets, r.SLOAttained, ms(r.P99Latency), r.CostWorkerSec)
}

// RunCluster drives one trace through a fresh virtual fleet under one
// autoscaling policy. Per epoch: submit the interval's arrivals as one
// weighted batch (the event-driven dispatcher services them in virtual
// time), fold the interval's queueing/latency/utilization telemetry
// into an AutoSignal, and apply the policy's decision with
// SetVirtualWorkers — growth inside the previous decision's prewarmed
// standby starts warm at the decision time, growth beyond it pays the
// cold-start penalty, and the pool layer sees the standby target via
// Prewarm. Cost accrues as provisioned (active + standby)
// worker-time whether or not the capacity served anything; that is the
// quantity the SLO buys down. Deterministic: same config, same policy
// parameters, bit-identical report.
func RunCluster(w *wasp.Wasp, pol sched.AutoPolicy, cfg ClusterConfig) (*ClusterReport, error) {
	const F = uint64(cycles.Frequency)
	if cfg.Epoch == 0 {
		cfg.Epoch = F / 4
	}
	if cfg.SLO == 0 {
		cfg.SLO = F / 20
	}
	if cfg.ColdStart == 0 {
		cfg.ColdStart = F / 40
	}
	if cfg.InitialWorkers < 1 {
		cfg.InitialWorkers = 1
	}
	trace := cfg.Trace
	if len(trace) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	opts := []sched.Option{
		sched.WithAdmission(sched.Admission{
			Weights: map[string]int{"api": 3, "web": 2, "spike": 2, "batch": 1},
		}),
	}
	if cfg.Linear {
		opts = append(opts, sched.WithLinearDispatch(true))
	}
	tr := cfg.Tracer
	if tr != nil {
		opts = append(opts, sched.WithTracer(tr))
		w.SetTracer(tr)
	}
	s := sched.NewVirtual(w, cfg.InitialWorkers, opts...)
	defer s.Close()

	rep := &ClusterReport{
		Policy:         pol.Name(),
		InitialWorkers: cfg.InitialWorkers,
		PeakWorkers:    cfg.InitialWorkers,
		Tickets:        len(trace),
	}
	var (
		latencies []uint64
		inSLO     int
		svcEWMA   uint64
		standby   int
		idx       int
	)
	for epoch := uint64(0); idx < len(trace); epoch++ {
		end := (epoch + 1) * cfg.Epoch
		lo := idx
		for idx < len(trace) && trace[idx].Arrival < end {
			idx++
		}
		chunk := trace[lo:idx]
		width := s.NumWorkers()
		rep.CostWorkerSec += float64(uint64(width+standby)*cfg.Epoch) / float64(F)
		var (
			queueDelays []uint64
			served      uint64
			backlog     int
		)
		if len(chunk) > 0 {
			tickets := s.SubmitBatchAt(chunk)
			for _, t := range tickets {
				if _, err := t.Wait(); err != nil {
					rep.Rejected++
					continue
				}
				lat := t.Done - t.Arrival
				latencies = append(latencies, lat)
				if lat <= cfg.SLO {
					inSLO++
				}
				queueDelays = append(queueDelays, t.QueueCycles())
				svc := t.ServiceCycles()
				served += svc
				if svcEWMA == 0 {
					svcEWMA = svc
				} else {
					svcEWMA += (svc - svcEWMA) / 8
				}
				if t.Done > end {
					backlog++
				}
			}
		}
		sig := sched.AutoSignal{
			At:       end,
			Epoch:    cfg.Epoch,
			Workers:  width,
			Arrivals: len(chunk),
			Backlog:  backlog,
			SvcEWMA:  svcEWMA,
			QueueP99: percentileU64(queueDelays, 0.99),
			Util:     float64(served) / float64(uint64(width)*cfg.Epoch),
		}
		dec := pol.Scale(sig)
		if dec.Workers < 1 {
			dec.Workers = 1
		}
		if tr.Enabled() {
			tr.Span(obs.ControlLane, obs.KindEpoch, "epoch", epoch*cfg.Epoch, end,
				epoch+1, uint64(len(chunk)), uint64(width))
			tr.Instant(obs.ControlLane, obs.KindAutoscale, "autoscale-decision", end,
				uint64(dec.Prewarm), uint64(width), uint64(dec.Workers))
		}
		if dec.Workers != width {
			rep.ScaleEvents++
			if growth := dec.Workers - width; growth > 0 {
				warm := growth
				if warm > standby {
					warm = standby
				}
				if warm > 0 {
					s.SetVirtualWorkers(width+warm, end)
				}
				if growth > warm {
					// Beyond the prewarmed standby, new capacity boots cold.
					s.SetVirtualWorkers(dec.Workers, end+cfg.ColdStart)
				}
			} else {
				s.SetVirtualWorkers(dec.Workers, end)
			}
		}
		standby = dec.Prewarm
		if standby > 0 {
			// Surface the standby target to the pool layer too: warm
			// shells ahead of the width the policy expects to need.
			w.Prewarm(64<<10, standby)
		}
		if n := s.NumWorkers(); n > rep.PeakWorkers {
			rep.PeakWorkers = n
		}
		rep.Epochs++
	}
	rep.FinalWorkers = s.NumWorkers()
	rep.Makespan = s.Makespan()
	if n := len(latencies); n > 0 {
		rep.SLOAttained = float64(inSLO) / float64(n)
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.P50Latency = latencies[n/2]
		rep.P99Latency = percentileSortedU64(latencies, 0.99)
	}
	return rep, nil
}

// percentileU64 is the pth percentile of an unsorted sample (copied,
// so the caller's slice is untouched); 0 for an empty sample.
func percentileU64(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]uint64(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return percentileSortedU64(cp, p)
}

func percentileSortedU64(xs []uint64, p float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(float64(len(xs)-1) * p)
	return xs[i]
}
