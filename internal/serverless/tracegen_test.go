package serverless

import (
	"reflect"
	"testing"

	"repro/internal/cycles"
)

// The seed contract: same seed, same trace, bit for bit; different
// seeds, different traces.
func TestTraceGeneratorSeedContract(t *testing.T) {
	const F = uint64(cycles.Frequency)
	svc := ServiceProfile{Base: F / 500, Spread: 0.5}
	type key struct {
		Arrival uint64
		Image   string
	}
	project := func(seed uint64) []key {
		reqs := ClusterMix(seed, 0.5, F)
		out := make([]key, len(reqs))
		for i, r := range reqs {
			out[i] = key{r.Arrival, r.Image}
		}
		return out
	}
	a, b := project(42), project(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce the trace bit for bit")
	}
	if c := project(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds must give different traces")
	}

	p1 := PoissonTrace(7, "img", 100, F, svc)
	p2 := PoissonTrace(7, "img", 100, F, svc)
	if len(p1) == 0 || len(p1) != len(p2) {
		t.Fatalf("poisson reproducibility: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Arrival != p2[i].Arrival {
			t.Fatalf("poisson arrival %d diverged", i)
		}
	}
}

// Poisson arrivals land near the requested rate, and the heavy-tail
// service profile actually produces a tail.
func TestTraceGeneratorShapes(t *testing.T) {
	const F = uint64(cycles.Frequency)
	reqs := PoissonTrace(1, "img", 200, 4*F, ServiceProfile{Base: 1000})
	got := float64(len(reqs)) / 4
	if got < 150 || got > 250 {
		t.Fatalf("poisson rate 200/s came out at %.0f/s", got)
	}

	tail := PoissonTrace(2, "img", 500, 2*F, ServiceProfile{Base: 1000, TailAlpha: 1.2, TailCap: 1_000_000})
	over := 0
	for _, r := range tail {
		// Recover the drawn cost by running the closure on a clock.
		clk := cycles.NewClock()
		r.Fn(clk)
		if clk.Now() >= 10_000 {
			over++
		}
	}
	if over == 0 {
		t.Fatal("pareto tail produced no draws >= 10x the base")
	}
	if over > len(tail)/2 {
		t.Fatalf("pareto tail too fat: %d of %d over 10x", over, len(tail))
	}

	// Diurnal: the busy half of the curve must carry more arrivals than
	// the quiet half.
	d := DiurnalTrace(3, "web", 20, 200, 2*F, 2*F, ServiceProfile{Base: 1000})
	var first, second int
	for _, r := range d {
		if r.Arrival < F {
			first++
		} else {
			second++
		}
	}
	if first == 0 || second == 0 || first == second {
		t.Fatalf("diurnal halves should differ: %d vs %d", first, second)
	}

	// Flash crowd: a crowd window must be far denser than the background.
	fc := FlashCrowdTrace(4, "spike", 2, 1, 500, 2*F, ServiceProfile{Base: 1000})
	if len(fc) < 500 {
		t.Fatalf("flash crowd lost arrivals: %d", len(fc))
	}
	for i := 1; i < len(fc); i++ {
		if fc[i].Arrival < fc[i-1].Arrival {
			t.Fatalf("trace must be arrival-sorted at %d", i)
		}
	}
}
