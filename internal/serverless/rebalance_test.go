package serverless

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/cycles"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// The drift guest's hypercall count must actually follow its argument —
// that is the dial the whole rebalance experiment turns.
func TestDriftImageFollowsItsArgument(t *testing.T) {
	w := wasp.New()
	img := DriftImage()
	var lastEntries uint64
	for _, calls := range []uint64{1, 8, 40} {
		res, err := w.Run(img, wasp.RunConfig{Snapshot: true, RetBytes: 8, Args: driftArgs(calls)}, cycles.NewClock())
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(res.Ret); got != calls {
			t.Fatalf("drift guest returned %d marks, args said %d", got, calls)
		}
		if res.Entries <= lastEntries {
			t.Fatalf("entries did not grow with the hypercall count: %d after %d", res.Entries, lastEntries)
		}
		lastEntries = res.Entries
	}
}

func rebalanceFleet() []vmm.Platform {
	return []vmm.Platform{vmm.KVM{}, vmm.Paravirt{}, vmm.KVM{}, vmm.Paravirt{}}
}

func runRebalance(t *testing.T, hysteresis int) *RebalanceReport {
	t.Helper()
	w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.Paravirt{}))
	rep, err := RunRebalanceMix(w, "test", rebalanceFleet(), hysteresis, 16)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The headline acceptance: under the drifting trace, the Migrating
// placer must flip the tenant to paravirt exactly once (shipping its
// snapshot as a base-grafted delta) and beat the sticky baseline on
// BOTH makespan and drift-class p99.
func TestRebalanceMigratingBeatsSticky(t *testing.T) {
	sticky := runRebalance(t, -1)
	mig := runRebalance(t, 3)

	if sticky.Migrations != 0 || sticky.FinalHome != "kvm" {
		t.Fatalf("sticky baseline migrated (%d flips, home %s); negative hysteresis must pin the first preference",
			sticky.Migrations, sticky.FinalHome)
	}
	if mig.Migrations != 1 || mig.FinalHome != "paravirt" {
		t.Fatalf("migrating run: %d flips, final home %s; want exactly one flip to paravirt",
			mig.Migrations, mig.FinalHome)
	}
	if mig.DeltaMigrations != 1 || mig.MigratedBytes == 0 {
		t.Fatalf("flip shipped %d bytes, %d as delta; the pre-warmed base must make the migration delta-only",
			mig.MigratedBytes, mig.DeltaMigrations)
	}
	if mig.Makespan >= sticky.Makespan {
		t.Fatalf("makespan: migrating %d >= sticky %d", mig.Makespan, sticky.Makespan)
	}
	if mig.DriftP99Ms >= sticky.DriftP99Ms {
		t.Fatalf("drift p99: migrating %.3f ms >= sticky %.3f ms", mig.DriftP99Ms, sticky.DriftP99Ms)
	}
	var stickyPV, migPV uint64
	for _, sl := range sticky.Backends {
		if sl.Platform == "paravirt" {
			stickyPV = sl.DriftRuns
		}
	}
	for _, sl := range mig.Backends {
		if sl.Platform == "paravirt" {
			migPV = sl.DriftRuns
		}
	}
	if stickyPV != 0 {
		t.Fatalf("sticky baseline ran %d drift tickets on paravirt; the pin must strand them on kvm", stickyPV)
	}
	if migPV == 0 {
		t.Fatal("migrating run placed no drift tickets on paravirt after the flip")
	}
}

// Bit-identical reproducibility of the whole report, for both the
// sticky and the flipping configuration — the Migrating placer is
// stateful but sequential, and each run gets a fresh instance.
func TestRebalanceMixDeterministic(t *testing.T) {
	for _, h := range []int{-1, 3} {
		a := runRebalance(t, h)
		b := runRebalance(t, h)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("hysteresis %d: rebalance report diverged:\n run1: %+v\n run2: %+v", h, a, b)
		}
	}
}
