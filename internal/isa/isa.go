// Package isa defines VX, the x86-modelled instruction set executed by the
// guest CPU emulator (internal/cpu). VX is not binary-compatible with x86,
// but it is architecturally faithful where the paper's measurements depend
// on architecture: it has the three canonical operating modes (16-bit real,
// 32-bit protected, 64-bit long), control registers gating mode transitions
// (CR0.PE, CR0.PG, CR4.PAE, EFER.LME/LMA, CR3), a GDT loaded with LGDT,
// far jumps that complete mode switches, and port I/O (OUT) as the
// hypercall trap, exactly as Wasp uses virtual I/O ports (§5.1).
//
// Encoding: instructions are variable length. Byte 0 is the opcode,
// byte 1 (when present) packs two register operands (dst in the low
// nibble, src in the high nibble). Immediates and displacements are
// encoded at the operating width of the code that contains them (2, 4, or
// 8 bytes), which is why — as on x86 — the same binary image carries
// 16-bit boot code, 32-bit protected-mode code, and 64-bit long-mode code,
// and the CPU decodes according to its current mode.
package isa

import (
	"encoding/binary"
	"fmt"
)

// Reg names the sixteen general-purpose registers. The x86 aliases are
// used throughout the toolchain; the hypercall ABI follows the SysV/Linux
// convention (number in the port, args in RDI/RSI/RDX/R10/R8/R9, return in
// RAX).
type Reg uint8

const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs = 16
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// RegByName resolves an assembler register name (x86 alias, any width
// prefix: rax/eax/ax all name RAX).
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if name == n {
			return Reg(i), true
		}
	}
	// 32- and 16-bit aliases.
	alias := map[string]Reg{
		"eax": RAX, "ecx": RCX, "edx": RDX, "ebx": RBX,
		"esp": RSP, "ebp": RBP, "esi": RSI, "edi": RDI,
		"ax": RAX, "cx": RCX, "dx": RDX, "bx": RBX,
		"sp": RSP, "bp": RBP, "si": RSI, "di": RDI,
	}
	r, ok := alias[name]
	return r, ok
}

// CR names the control registers reachable with MOVCR/RDCR.
type CR uint8

const (
	CR0 CR = iota
	CR3
	CR4
	EFER
	NumCRs
)

func (c CR) String() string {
	switch c {
	case CR0:
		return "cr0"
	case CR3:
		return "cr3"
	case CR4:
		return "cr4"
	case EFER:
		return "efer"
	}
	return fmt.Sprintf("cr?%d", uint8(c))
}

// Control-register bits (x86 numbering where it matters).
const (
	CR0PE   = 1 << 0  // protection enable
	CR0PG   = 1 << 31 // paging enable
	CR4PAE  = 1 << 5  // physical address extension
	EFERLME = 1 << 8  // long mode enable
	EFERLMA = 1 << 10 // long mode active (set by hardware)
)

// Mode is the CPU operating mode, which fixes operand width.
type Mode uint8

const (
	Mode16 Mode = iota // real mode
	Mode32             // protected mode
	Mode64             // long mode
)

func (m Mode) String() string {
	switch m {
	case Mode16:
		return "real16"
	case Mode32:
		return "prot32"
	case Mode64:
		return "long64"
	}
	return "mode?"
}

// widthTab is sized and masked so the compiler can elide the bounds
// check; indices 3+ are unreachable (there are three modes).
var widthTab = [4]int{Mode16: 2, Mode32: 4, Mode64: 8, 3: 8}

// Width returns the operand width in bytes for the mode.
func (m Mode) Width() int { return widthTab[m&3] }

// Op is a VX opcode.
type Op uint8

const (
	NOP Op = iota
	HLT
	MOVI  // mov dst, imm
	MOV   // mov dst, src
	LOAD  // load dst, [src+disp]
	STORE // store [dst+disp], src
	LOADB // byte load (zero-extends)
	STOREB
	ADD  // add dst, src
	ADDI // add dst, imm
	SUB
	SUBI
	MUL
	DIV // unsigned-ish: signed 64-bit quotient
	MOD
	AND
	ANDI
	OR
	ORI
	XOR
	SHL // shl dst, imm8
	SHR
	SAR
	NEG
	NOT
	INC
	DEC
	CMP  // cmp a, b (sets flags)
	CMPI // cmp a, imm
	JMP  // absolute, imm at current width
	JZ
	JNZ
	JL // signed <
	JG
	JLE
	JGE
	JB  // unsigned <
	JAE // unsigned >=
	CALL
	RET
	PUSH
	POP
	OUT   // out imm8, reg — hypercall trap
	IN    // in reg, imm8
	LGDT  // lgdt imm (address of descriptor in memory)
	MOVCR // movcr crN, reg
	RDCR  // rdcr reg, crN
	LJMP  // ljmp width8, imm — far jump completing a mode switch
	CLI
	STI
	SHLV // variable shifts: dst <<= src&63
	SHRV
	SARV
	NumOps
)

var opNames = [NumOps]string{
	"nop", "hlt", "movi", "mov", "load", "store", "loadb", "storeb",
	"add", "addi", "sub", "subi", "mul", "div", "mod",
	"and", "andi", "or", "ori", "xor", "shl", "shr", "sar",
	"neg", "not", "inc", "dec", "cmp", "cmpi",
	"jmp", "jz", "jnz", "jl", "jg", "jle", "jge", "jb", "jae",
	"call", "ret", "push", "pop", "out", "in",
	"lgdt", "movcr", "rdcr", "ljmp", "cli", "sti",
	"shlv", "shrv", "sarv",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < NumOps }

// operand shape tables, used by the encoder, decoder, and disassembler.

// HasRegByte reports whether the instruction carries the packed register
// operand byte.
func (o Op) HasRegByte() bool {
	switch o {
	case NOP, HLT, JMP, JZ, JNZ, JL, JG, JLE, JGE, JB, JAE, CALL, RET,
		LGDT, CLI, STI, LJMP:
		return false
	}
	return true
}

// ImmKind describes the immediate an instruction carries.
type ImmKind uint8

const (
	ImmNone ImmKind = iota
	ImmWord         // operating-width immediate
	ImmByte         // single byte (shift counts, port numbers, widths)
)

// Imm returns the immediate kind for the opcode.
func (o Op) Imm() ImmKind {
	switch o {
	case MOVI, ADDI, SUBI, ANDI, ORI, CMPI, LOAD, STORE, LOADB, STOREB,
		JMP, JZ, JNZ, JL, JG, JLE, JGE, JB, JAE, CALL, LGDT:
		return ImmWord
	case SHL, SHR, SAR, OUT, IN:
		return ImmByte
	case LJMP:
		// LJMP carries a width byte then a word immediate; handled
		// specially by the codec, reported as ImmWord here for sizing
		// plus one extra byte.
		return ImmWord
	default:
		return ImmNone
	}
}

// EncodedLen returns the instruction length in bytes at the given mode.
func (o Op) EncodedLen(m Mode) int {
	n := 1
	if o.HasRegByte() {
		n++
	}
	switch o.Imm() {
	case ImmWord:
		n += m.Width()
	case ImmByte:
		n++
	}
	if o == LJMP {
		n++ // the width byte
	}
	return n
}

// PackRegs packs dst and src into the operand byte.
func PackRegs(dst, src Reg) byte { return byte(dst)&0x0F | byte(src)<<4 }

// UnpackRegs splits the operand byte.
func UnpackRegs(b byte) (dst, src Reg) { return Reg(b & 0x0F), Reg(b >> 4) }

// PutWord encodes v at the mode's width into buf, little-endian, returning
// the number of bytes written.
func PutWord(buf []byte, m Mode, v uint64) int {
	switch m {
	case Mode16:
		binary.LittleEndian.PutUint16(buf, uint16(v))
		return 2
	case Mode32:
		binary.LittleEndian.PutUint32(buf, uint32(v))
		return 4
	default:
		binary.LittleEndian.PutUint64(buf, v)
		return 8
	}
}

// Word decodes a little-endian value of the mode's width. Values are
// sign-extended to 64 bits: displacements and relative offsets need sign,
// and addresses in 16/32-bit modes never have the top bit set in practice.
func Word(buf []byte, m Mode) uint64 {
	switch m {
	case Mode16:
		return uint64(int64(int16(binary.LittleEndian.Uint16(buf))))
	case Mode32:
		return uint64(int64(int32(binary.LittleEndian.Uint32(buf))))
	default:
		return binary.LittleEndian.Uint64(buf)
	}
}
