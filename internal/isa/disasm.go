package isa

import (
	"fmt"
	"strings"
)

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Dst  Reg
	Src  Reg
	Imm  uint64 // sign-extended word immediate or zero-extended byte imm
	Sub  byte   // LJMP width byte (2/4/8), MOVCR/RDCR CR index lives in Src
	Len  int    // encoded length in bytes
	Addr uint64 // address decoded from (filled by Decode)
}

// Decode decodes one instruction from code at off, at operating mode m.
// It returns the instruction or an error for truncated/invalid encodings.
func Decode(code []byte, off uint64, m Mode) (Inst, error) {
	if off >= uint64(len(code)) {
		return Inst{}, fmt.Errorf("isa: fetch beyond image at %#x", off)
	}
	op := Op(code[off])
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode %#x at %#x", code[off], off)
	}
	n := op.EncodedLen(m)
	if off+uint64(n) > uint64(len(code)) {
		return Inst{}, fmt.Errorf("isa: truncated %s at %#x", op, off)
	}
	in := Inst{Op: op, Len: n, Addr: off}
	p := off + 1
	if op.HasRegByte() {
		in.Dst, in.Src = UnpackRegs(code[p])
		p++
	}
	if op == LJMP {
		in.Sub = code[p]
		p++
	}
	switch op.Imm() {
	case ImmWord:
		in.Imm = Word(code[p:], m)
	case ImmByte:
		in.Imm = uint64(code[p])
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case NOP, HLT, RET, CLI, STI:
		return in.Op.String()
	case MOVI, ADDI, SUBI, ANDI, ORI, CMPI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, int64(in.Imm))
	case MOV, ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, CMP, SHLV, SHRV, SARV:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	case LOAD, LOADB:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, in.Dst, in.Src, int64(in.Imm))
	case STORE, STOREB:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, in.Dst, int64(in.Imm), in.Src)
	case SHL, SHR, SAR:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Dst, in.Imm)
	case NEG, NOT, INC, DEC, PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case JMP, JZ, JNZ, JL, JG, JLE, JGE, JB, JAE, CALL, LGDT:
		return fmt.Sprintf("%s %#x", in.Op, in.Imm)
	case OUT:
		return fmt.Sprintf("out %#x, %s", in.Imm, in.Dst)
	case IN:
		return fmt.Sprintf("in %s, %#x", in.Dst, in.Imm)
	case MOVCR:
		return fmt.Sprintf("movcr %s, %s", CR(in.Dst), in.Src)
	case RDCR:
		return fmt.Sprintf("rdcr %s, %s", in.Dst, CR(in.Src))
	case LJMP:
		return fmt.Sprintf("ljmp%d %#x", in.Sub*8, in.Imm)
	}
	return in.Op.String()
}

// Disassemble renders code starting at base in mode m until an invalid
// byte or the end of the buffer, one instruction per line. It is a
// debugging aid; mixed-mode images (boot code) disassemble only their
// first mode's section correctly, as on x86.
func Disassemble(code []byte, base uint64, m Mode) string {
	var sb strings.Builder
	var off uint64
	for off < uint64(len(code)) {
		in, err := Decode(code, off, m)
		if err != nil {
			fmt.Fprintf(&sb, "%06x: <%v>\n", base+off, err)
			break
		}
		fmt.Fprintf(&sb, "%06x: %s\n", base+off, in)
		off += uint64(in.Len)
	}
	return sb.String()
}
