package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	if RAX.String() != "rax" || R15.String() != "r15" {
		t.Fatal("register names wrong")
	}
	r, ok := RegByName("eax")
	if !ok || r != RAX {
		t.Fatal("eax should alias rax")
	}
	r, ok = RegByName("sp")
	if !ok || r != RSP {
		t.Fatal("sp should alias rsp")
	}
	if _, ok := RegByName("xyz"); ok {
		t.Fatal("xyz should not resolve")
	}
}

func TestModeWidth(t *testing.T) {
	cases := []struct {
		m Mode
		w int
	}{{Mode16, 2}, {Mode32, 4}, {Mode64, 8}}
	for _, c := range cases {
		if c.m.Width() != c.w {
			t.Fatalf("%v width = %d, want %d", c.m, c.m.Width(), c.w)
		}
	}
}

func TestPackUnpackRegs(t *testing.T) {
	f := func(d, s uint8) bool {
		dst, src := Reg(d%16), Reg(s%16)
		gd, gs := UnpackRegs(PackRegs(dst, src))
		return gd == dst && gs == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordSignExtension(t *testing.T) {
	var buf [8]byte
	// -8 at 16-bit width must round-trip as a sign-extended 64-bit value.
	minus8 := int64(-8)
	n := PutWord(buf[:], Mode16, uint64(minus8))
	if n != 2 {
		t.Fatalf("PutWord wrote %d bytes, want 2", n)
	}
	if got := int64(Word(buf[:], Mode16)); got != -8 {
		t.Fatalf("Word = %d, want -8", got)
	}
	// 0x8000 decodes as negative at 16-bit width (callers re-mask
	// addresses); check the documented sign extension happens.
	PutWord(buf[:], Mode16, 0x8000)
	if got := Word(buf[:], Mode16); got != 0xFFFF_FFFF_FFFF_8000 {
		t.Fatalf("Word(0x8000@16) = %#x, want sign-extended", got)
	}
}

func TestWordRoundTripAllWidths(t *testing.T) {
	f := func(v int32, mRaw uint8) bool {
		m := Mode(mRaw % 3)
		var buf [8]byte
		// Clamp v to fit the width so the round trip is exact.
		val := int64(v)
		if m == Mode16 {
			val = int64(int16(v))
		}
		PutWord(buf[:], m, uint64(val))
		return int64(Word(buf[:], m)) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedLenMatchesDecode(t *testing.T) {
	// Build a canonical encoding for every opcode and check Decode
	// agrees with EncodedLen at every mode.
	for op := Op(0); op < NumOps; op++ {
		for _, m := range []Mode{Mode16, Mode32, Mode64} {
			buf := make([]byte, 1+1+1+8)
			buf[0] = byte(op)
			if op == LJMP {
				// width byte must be valid-ish
				pos := 1
				if op.HasRegByte() {
					pos = 2
				}
				buf[pos] = 4
			}
			in, err := Decode(buf, 0, m)
			if err != nil {
				t.Fatalf("%v@%v: %v", op, m, err)
			}
			if in.Len != op.EncodedLen(m) {
				t.Fatalf("%v@%v: decode len %d != EncodedLen %d", op, m, in.Len, op.EncodedLen(m))
			}
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode([]byte{0xFF}, 0, Mode64); err == nil {
		t.Fatal("want error for invalid opcode")
	}
	if _, err := Decode([]byte{byte(MOVI)}, 0, Mode64); err == nil {
		t.Fatal("want error for truncated instruction")
	}
	if _, err := Decode(nil, 0, Mode64); err == nil {
		t.Fatal("want error for empty code")
	}
	if _, err := Decode([]byte{0}, 5, Mode64); err == nil {
		t.Fatal("want error for fetch beyond image")
	}
}

func TestInstString(t *testing.T) {
	code := make([]byte, 10)
	code[0] = byte(MOVI)
	code[1] = PackRegs(RAX, 0)
	PutWord(code[2:], Mode64, 42)
	in, err := Decode(code, 0, Mode64)
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != "movi rax, 42" {
		t.Fatalf("String = %q", in.String())
	}
}

func TestDisassembleStopsOnGarbage(t *testing.T) {
	out := Disassemble([]byte{byte(NOP), byte(HLT), 0xEE}, 0x8000, Mode64)
	if out == "" {
		t.Fatal("disassembly empty")
	}
	// Should contain the two valid instructions then the error marker.
	if !contains(out, "nop") || !contains(out, "hlt") || !contains(out, "<") {
		t.Fatalf("unexpected disassembly:\n%s", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCRString(t *testing.T) {
	if CR0.String() != "cr0" || EFER.String() != "efer" {
		t.Fatal("CR names wrong")
	}
}
