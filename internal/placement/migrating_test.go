package placement

import (
	"fmt"
	"testing"

	"repro/internal/vmm"
)

// scriptedPlacer returns a fixed preference index until told otherwise —
// a stand-in for a cost model whose EWMAs drift.
type scriptedPlacer struct{ pref int }

func (s *scriptedPlacer) Place(img ImageInfo, backends []BackendInfo) []float64 {
	out := make([]float64, len(backends))
	for i := range out {
		out[i] = 1
	}
	out[s.pref] = 2
	return out
}

func pinnedTo(t *testing.T, w []float64, idx int) {
	t.Helper()
	for i, v := range w {
		if i == idx && v <= 0 {
			t.Fatalf("weights %v: backend %d should be pinned eligible", w, i)
		}
		if i != idx && v > 0 {
			t.Fatalf("weights %v: backend %d should be ineligible (pin on %d)", w, i, idx)
		}
	}
}

func TestMigratingCommitsFirstPreferenceWithoutSideEffect(t *testing.T) {
	inner := &scriptedPlacer{pref: 1}
	fired := 0
	m := NewMigrating(inner, 3)
	m.OnMigrate = func(image, from, to string) { fired++ }
	w := m.Place(ImageInfo{Name: "a"}, fleet())
	pinnedTo(t, w, 1)
	if fired != 0 || m.Migrations() != 0 {
		t.Fatalf("first sight must adopt the preference silently (fired=%d)", fired)
	}
	if got := m.Committed("a"); got != "hyper-v" {
		t.Fatalf("Committed = %q, want hyper-v", got)
	}
}

func TestMigratingFlipRequiresHysteresisStreak(t *testing.T) {
	inner := &scriptedPlacer{pref: 0}
	var flips []string
	m := NewMigrating(inner, 3)
	m.OnMigrate = func(image, from, to string) {
		flips = append(flips, fmt.Sprintf("%s:%s->%s", image, from, to))
	}
	if m.Place(ImageInfo{Name: "a"}, fleet()); m.Committed("a") != "kvm" {
		t.Fatal("setup: expected initial commit to kvm")
	}

	// Preference moves to hyper-v: two decisions must NOT flip...
	inner.pref = 1
	pinnedTo(t, m.Place(ImageInfo{Name: "a"}, fleet()), 0)
	pinnedTo(t, m.Place(ImageInfo{Name: "a"}, fleet()), 0)
	if len(flips) != 0 {
		t.Fatalf("flipped before hysteresis streak: %v", flips)
	}
	// ...the third does, and the weights of that very call pin the new home.
	pinnedTo(t, m.Place(ImageInfo{Name: "a"}, fleet()), 1)
	if len(flips) != 1 || flips[0] != "a:kvm->hyper-v" {
		t.Fatalf("flips = %v, want exactly a:kvm->hyper-v", flips)
	}
	if m.Migrations() != 1 || m.Committed("a") != "hyper-v" {
		t.Fatalf("post-flip state: migrations=%d committed=%q", m.Migrations(), m.Committed("a"))
	}
}

func TestMigratingStreakResetsWhenPreferenceReturns(t *testing.T) {
	inner := &scriptedPlacer{pref: 0}
	m := NewMigrating(inner, 2)
	m.OnMigrate = func(image, from, to string) { t.Errorf("unexpected flip %s->%s", from, to) }
	m.Place(ImageInfo{Name: "a"}, fleet()) // commit kvm
	inner.pref = 1
	m.Place(ImageInfo{Name: "a"}, fleet()) // streak 1 of 2
	inner.pref = 0
	m.Place(ImageInfo{Name: "a"}, fleet()) // back home — streak resets
	inner.pref = 1
	pinnedTo(t, m.Place(ImageInfo{Name: "a"}, fleet()), 0) // streak 1 again, no flip
	if m.Migrations() != 0 {
		t.Fatal("an interrupted streak must not accumulate toward a flip")
	}
}

func TestMigratingNegativeHysteresisIsSticky(t *testing.T) {
	inner := &scriptedPlacer{pref: 0}
	m := NewMigrating(inner, -1)
	m.OnMigrate = func(image, from, to string) { t.Errorf("sticky placer flipped %s->%s", from, to) }
	m.Place(ImageInfo{Name: "a"}, fleet())
	inner.pref = 1
	for i := 0; i < 50; i++ {
		pinnedTo(t, m.Place(ImageInfo{Name: "a"}, fleet()), 0)
	}
	if m.Migrations() != 0 {
		t.Fatal("negative hysteresis must never flip")
	}
}

func TestMigratingIneligiblePassThrough(t *testing.T) {
	m := NewMigrating(Static{Pins: map[string]string{"a": "xen"}}, 3)
	for _, w := range m.Place(ImageInfo{Name: "a"}, fleet()) {
		if w > 0 {
			t.Fatal("an all-ineligible inner result must pass through untouched")
		}
	}
	if m.Committed("a") != "" {
		t.Fatal("refused placements must not commit a home")
	}
}

func TestMigratingReAdoptsWhenCommittedBackendTurnsIneligible(t *testing.T) {
	pins := map[string]string{"a": "kvm"}
	m := NewMigrating(Static{Pins: pins}, 3)
	fired := 0
	m.OnMigrate = func(image, from, to string) { fired++ }
	m.Place(ImageInfo{Name: "a"}, fleet()) // commit kvm
	pins["a"] = "hyper-v"                  // operator re-pins; kvm now weight 0
	w := m.Place(ImageInfo{Name: "a"}, fleet())
	pinnedTo(t, w, 1)
	if fired != 0 {
		t.Fatal("re-adopting after the committed backend became ineligible is not a migration: there is no eligible source to export from")
	}
	if m.Committed("a") != "hyper-v" {
		t.Fatalf("Committed = %q, want hyper-v", m.Committed("a"))
	}
}

func TestMigratingStateIsLRUBounded(t *testing.T) {
	m := NewMigrating(nil, 3)
	m.MaxImages = 8
	for i := 0; i < 100; i++ {
		m.Place(ImageInfo{Name: fmt.Sprintf("img-%d", i)}, fleet())
	}
	m.mu.Lock()
	n := m.lru.Len()
	m.mu.Unlock()
	if n > 8 {
		t.Fatalf("tracked %d images, cap is 8", n)
	}
	if m.Committed("img-99") == "" {
		t.Fatal("the hottest image must survive eviction")
	}
	if m.Committed("img-0") != "" {
		t.Fatal("the coldest image must have been evicted")
	}
}

// syntheticPlatform lets the overflow table test push the cost model to
// profiles far beyond the calibrated Fig 5 backends.
type syntheticPlatform struct {
	name                string
	create, entry, exit uint64
}

func (p syntheticPlatform) Name() string       { return p.name }
func (p syntheticPlatform) CreateCost() uint64 { return p.create }
func (p syntheticPlatform) EntryCost() uint64  { return p.entry }
func (p syntheticPlatform) ExitCost() uint64   { return p.exit }

// TestCostModelExtremeProfilesKeepOrdering is the regression table for
// the ov² overflow: with uint64 arithmetic, ov beyond ~2³² made ov*ov
// wrap, so an absurdly expensive backend could score a tiny bias and
// beat a cheap one. The bias is float64 now; ordering must hold at any
// magnitude.
func TestCostModelExtremeProfilesKeepOrdering(t *testing.T) {
	cases := []struct {
		name        string
		cheap, dear syntheticPlatform
		img         ImageInfo
	}{
		{
			name:  "create-at-2^36-wraps-uint64-square",
			cheap: syntheticPlatform{"cheap", 1 << 20, 100, 100},
			dear:  syntheticPlatform{"dear", 1 << 36, 100, 100},
			img:   ImageInfo{Name: "short"},
		},
		{
			name:  "entry-cost-dominated-chatty-image",
			cheap: syntheticPlatform{"cheap", 1 << 20, 1 << 10, 1 << 10},
			dear:  syntheticPlatform{"dear", 1 << 20, 1 << 34, 1 << 34},
			img:   ImageInfo{Name: "chatty", EntriesEWMA: 1 << 12},
		},
		{
			name:  "long-lived-image-extreme-create",
			cheap: syntheticPlatform{"cheap", 1 << 24, 500, 500},
			dear:  syntheticPlatform{"dear", 1 << 40, 500, 500},
			img:   ImageInfo{Name: "long", SvcEWMA: 1 << 30},
		},
		{
			name:  "max-profile-does-not-poison-weights",
			cheap: syntheticPlatform{"cheap", 1, 1, 1},
			dear:  syntheticPlatform{"dear", 1 << 62, 1 << 62, 1 << 62},
			img:   ImageInfo{Name: "any", SvcEWMA: 1 << 40, EntriesEWMA: 1 << 20},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := []BackendInfo{
				{Platform: tc.cheap, Workers: 1},
				{Platform: tc.dear, Workers: 1},
			}
			w := CostModel{}.Place(tc.img, b)
			if w[0] <= 0 || w[1] <= 0 {
				t.Fatalf("weights %v: every backend must stay eligible", w)
			}
			if w[0] <= w[1] {
				t.Fatalf("weights %v: the cheaper profile must keep the higher weight", w)
			}
		})
	}
}

// TestCostModelEntriesPickTheWinner pins the non-dominated trade-off the
// Paravirt backend exists for: quiet images prefer KVM's cheap create,
// chatty images prefer paravirt's cheap entry/exit — with the crossover
// around 30 entries per run at the calibrated costs.
func TestCostModelEntriesPickTheWinner(t *testing.T) {
	b := []BackendInfo{
		{Platform: vmm.KVM{}, Workers: 1},
		{Platform: vmm.Paravirt{}, Workers: 1},
	}
	quiet := CostModel{}.Place(ImageInfo{Name: "quiet", EntriesEWMA: 1}, b)
	if quiet[0] <= quiet[1] {
		t.Fatalf("quiet image weights %v: kvm must win", quiet)
	}
	chatty := CostModel{}.Place(ImageInfo{Name: "chatty", EntriesEWMA: 200}, b)
	if chatty[1] <= chatty[0] {
		t.Fatalf("chatty image weights %v: paravirt must win", chatty)
	}
}
