package placement

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// DefaultHysteresis is the number of consecutive Place calls that must
// prefer a different backend before Migrating commits the flip — one
// outlier run perturbing the EWMA must not thrash a tenant's warm state
// across backends.
const DefaultHysteresis = 3

// DefaultMaxImages bounds Migrating's per-image flip state under tenant
// churn (matches the scheduler's own per-image telemetry cap).
const DefaultMaxImages = 4096

// Migrating wraps any inner Placer with placement-flip detection and a
// migration side effect: each image is pinned to one committed backend
// at a time (so its warm snapshot/COW state has a single home), and when
// the inner policy's preference moves away from the committed backend
// for Hysteresis consecutive decisions, the pin flips and OnMigrate
// fires so the caller can move the image's snapshot state along
// (wasp.MigrateSnapshot). The flip ordering contract:
//
//  1. the flip is decided (streak reaches Hysteresis),
//  2. OnMigrate(image, from, to) runs — synchronously, before any
//     weight under the new pin is returned,
//  3. the pin moves; the weights returned by THIS call already pin the
//     new backend.
//
// So by the time any ticket can be steered to the new backend, the
// migration side effect has already been attempted. A failed migration
// (OnMigrate is fire-and-forget; errors stay with the callback) is
// safe: the target backend cold-boots the image and re-captures.
//
// Determinism: Migrating is stateful but sequential — given the same
// sequence of Place calls it makes the same decisions, so virtual-mode
// schedules stay bit-identical across runs. It must not be shared
// between two runs that expect independent histories. OnMigrate must
// not call back into the placer.
type Migrating struct {
	// Inner supplies the raw preference each decision; nil means
	// all-eligible equal weight (flips then only happen on eligibility
	// changes).
	Inner Placer
	// Hysteresis is how many consecutive decisions must prefer a
	// non-committed backend before the pin flips: 0 means
	// DefaultHysteresis, negative means never flip (a sticky baseline —
	// first preference wins forever).
	Hysteresis int
	// OnMigrate, when non-nil, runs synchronously on each committed flip
	// with the image name and the platform names the pin moved between.
	OnMigrate func(image, from, to string)
	// MaxImages caps the per-image state map (LRU eviction); 0 means
	// DefaultMaxImages.
	MaxImages int
	// Tracer, when non-nil and enabled, records each committed flip as a
	// placement-flip event (KindFlip) with the interned from/to platform
	// names. Set before the first Place call; nil-safe.
	Tracer *obs.Tracer

	mu         sync.Mutex
	lru        *list.List // *migState, front = most recently placed
	imgs       map[string]*list.Element
	migrations uint64
}

// migState is one image's flip-detection state.
type migState struct {
	name      string
	committed string // platform name the image is pinned to
	candidate string // platform currently outscoring the committed one
	streak    int    // consecutive decisions preferring candidate
}

// NewMigrating wraps inner with flip detection at the given hysteresis
// (see the Hysteresis field for the 0 and negative conventions).
func NewMigrating(inner Placer, hysteresis int) *Migrating {
	return &Migrating{Inner: inner, Hysteresis: hysteresis}
}

// Migrations reports how many committed flips have fired so far.
func (m *Migrating) Migrations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrations
}

// Committed reports the backend the image is currently pinned to ("" if
// the image has never been placed or its state was evicted).
func (m *Migrating) Committed(image string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.imgs[image]; ok {
		return e.Value.(*migState).committed
	}
	return ""
}

// Place implements Placer: it asks the inner policy for weights, keeps
// the image pinned to its committed backend, and flips the pin (firing
// OnMigrate) when the inner preference durably moves.
func (m *Migrating) Place(img ImageInfo, backends []BackendInfo) []float64 {
	inner := m.innerWeights(img, backends)
	// The inner policy's current preference: the highest positive weight,
	// ties to the lowest index (stable under the scheduler's fixed
	// backend order).
	pref := -1
	for i, w := range inner {
		if w > 0 && (pref < 0 || w > inner[pref]) {
			pref = i
		}
	}
	if pref < 0 {
		// Nothing eligible — pass the refusal through untouched.
		return inner
	}

	m.mu.Lock()
	st := m.touch(img.Name)
	committed := m.committedIndex(st, backends, inner)
	if committed < 0 {
		// First sight, evicted state, or the committed backend left the
		// fleet / became ineligible: adopt the current preference with no
		// side effect — there is no warm state under placement control to
		// move yet (or nowhere to move it from).
		st.committed = backends[pref].Platform.Name()
		st.candidate, st.streak = "", 0
		committed = pref
	} else if pref != committed {
		prefName := backends[pref].Platform.Name()
		if st.candidate == prefName {
			st.streak++
		} else {
			st.candidate, st.streak = prefName, 1
		}
		hyst := m.Hysteresis
		if hyst == 0 {
			hyst = DefaultHysteresis
		}
		if hyst > 0 && st.streak >= hyst {
			from := st.committed
			m.migrations++
			if tr := m.Tracer; tr.Enabled() {
				tr.Instant(obs.ControlLane, obs.KindFlip, st.name, 0, 0,
					uint64(tr.Name(from)), uint64(tr.Name(prefName)))
			}
			if m.OnMigrate != nil {
				m.OnMigrate(st.name, from, prefName)
			}
			st.committed = prefName
			st.candidate, st.streak = "", 0
			committed = pref
		}
	} else {
		st.candidate, st.streak = "", 0
	}
	m.mu.Unlock()

	out := make([]float64, len(backends))
	out[committed] = inner[committed]
	return out
}

// innerWeights asks the inner policy (all-eligible equal weight when
// nil) and pads a short return, mirroring the scheduler's own treatment
// of short Place results.
func (m *Migrating) innerWeights(img ImageInfo, backends []BackendInfo) []float64 {
	if m.Inner == nil {
		out := make([]float64, len(backends))
		for i := range out {
			out[i] = 1
		}
		return out
	}
	w := m.Inner.Place(img, backends)
	if len(w) >= len(backends) {
		return w[:len(backends)]
	}
	out := make([]float64, len(backends))
	n := copy(out, w)
	for i := n; i < len(out); i++ {
		out[i] = 1
	}
	return out
}

// committedIndex resolves the stored committed platform name to an index
// in this call's backend slice, requiring it to still be eligible; -1
// when unset, absent, or ineligible. Caller holds m.mu.
func (m *Migrating) committedIndex(st *migState, backends []BackendInfo, inner []float64) int {
	if st.committed == "" {
		return -1
	}
	for i, b := range backends {
		if b.Platform.Name() == st.committed {
			if inner[i] > 0 {
				return i
			}
			return -1
		}
	}
	return -1
}

// touch returns the image's state, creating it (and LRU-evicting the
// coldest entry over MaxImages) as needed. Caller holds m.mu.
func (m *Migrating) touch(name string) *migState {
	if m.imgs == nil {
		m.imgs = make(map[string]*list.Element)
		m.lru = list.New()
	}
	if e, ok := m.imgs[name]; ok {
		m.lru.MoveToFront(e)
		return e.Value.(*migState)
	}
	cap := m.MaxImages
	if cap <= 0 {
		cap = DefaultMaxImages
	}
	for m.lru.Len() >= cap {
		old := m.lru.Back()
		m.lru.Remove(old)
		delete(m.imgs, old.Value.(*migState).name)
	}
	st := &migState{name: name}
	m.imgs[name] = m.lru.PushFront(st)
	return st
}
