// Package placement is the multi-backend placement policy layer: given
// an image and the live state of a heterogeneous worker fleet (KVM and
// Hyper-V workers under one scheduler, Fig 5), a Placer decides which
// hypervisor backends may serve the image and how strongly each is
// preferred.
//
// Placement sits between admission and the pools: admission decides
// WHETHER a ticket runs (per-image quotas and weighted fairness,
// internal/sched); placement decides WHERE (per-backend eligibility and
// weights); the per-platform shell pools (internal/wasp) then serve the
// chosen backend. The two compose — an admitted ticket is dispatched by
// the admission pick and then placed on an eligible backend's worker.
//
// Weight contract. Place returns one weight per backend, aligned with
// the backends slice it was given:
//
//   - weight <= 0: the backend is ineligible — no worker pinned to it
//     may ever pop the ticket (enforced in real and virtual mode).
//   - weight > 0: eligible; 1/weight is the backend's placement bias in
//     virtual cycles. The deterministic virtual scheduler picks, among
//     eligible workers, the one minimizing start(worker) + 1/weight —
//     cost-aware list scheduling. Real-mode workers race for tickets,
//     but the race is weight-aware: a backend whose bias advantage over
//     the runner-up is material (against the image's own smoothed
//     service time) gets first claim while it has an idle worker, and
//     other eligible backends may take the ticket over only once the
//     preferred backend is saturated — work conservation over strict
//     preference. Near-ties race freely.
//
// Every policy here is a pure function of its inputs, so virtual-mode
// schedules are deterministic: same trace, same fleet, same policy →
// bit-identical placement, cycle counts, and makespan (the root
// determinism suite enforces it).
package placement

import "repro/internal/vmm"

// ImageInfo describes one image at placement time.
type ImageInfo struct {
	// Name is the image identity (the same key admission and the
	// per-image pool telemetry use).
	Name string
	// MemBytes is the image's guest-memory size class.
	MemBytes int
	// SvcEWMA is the image's observed smoothed service time in cycles —
	// 0 before its first completion. The scheduler maintains it per
	// image while a Placer is attached.
	SvcEWMA uint64
	// EntriesEWMA is the image's smoothed guest-entry count per run — how
	// many times the hypervisor re-enters the guest (1 + one per
	// hypercall). 0 before the first completion, treated as 1. It decides
	// which platform's entry/exit profile dominates: a chatty image pays
	// the entry/exit pair per hypercall, a quiet one pays it once.
	EntriesEWMA uint64
}

// BackendInfo is one backend's live state at placement time. In virtual
// mode every field is populated deterministically under the dispatch
// lock; in real mode only Platform and Workers are guaranteed (weights
// are eligibility-only there, see the package comment).
type BackendInfo struct {
	// Platform is the hypervisor backend (its Fig 5 cost profile).
	Platform vmm.Platform
	// Workers is the number of fleet workers pinned to this backend.
	Workers int
	// Busy is how many of them are mid-ticket at the decision time.
	Busy int
	// SvcEWMA is the smoothed service time of tickets completed on this
	// backend.
	SvcEWMA uint64
	// Completed counts tickets this backend has finished.
	Completed uint64
}

// Placer maps an image to eligible backends with weights. Implementations
// must be deterministic: no randomness, no wall-clock, no map iteration
// order dependence.
type Placer interface {
	// Place returns one weight per entry of backends (see the package
	// comment for the weight contract). A nil or short return is treated
	// as all-eligible with equal weight.
	Place(img ImageInfo, backends []BackendInfo) []float64
}

// Static pins images to explicit backends — operator policy ("tenant A
// is licensed for KVM hosts only") rather than a cost model.
type Static struct {
	// Pins maps an image name to the platform name that must serve it.
	Pins map[string]string
	// Default is the platform for unpinned images; "" leaves them
	// eligible everywhere with equal weight.
	Default string
}

// Place implements Placer: weight 1 on the pinned backend, 0 elsewhere.
// A pin naming a platform absent from the fleet yields all-zero weights,
// which the scheduler surfaces as ErrPlacement instead of queueing the
// ticket forever.
func (s Static) Place(img ImageInfo, backends []BackendInfo) []float64 {
	want := s.Pins[img.Name]
	if want == "" {
		want = s.Default
	}
	out := make([]float64, len(backends))
	for i, b := range backends {
		if want == "" || b.Platform.Name() == want {
			out[i] = 1
		}
	}
	return out
}

// costAmortRuns is the pool-churn horizon the cost model amortizes a
// backend's cold-create cost over: shells are recycled, so a run pays
// CreateCost only on the fraction of acquires that miss the warm pool.
const costAmortRuns = 8

// overheadOf is a backend's estimated per-run hypervisor overhead in
// cycles: the amortized create cost plus one entry/exit pair per guest
// entry (Fig 5's three measured operations). entries is the image's
// smoothed guest-entry count (0 means unknown — assume one entry). The
// result is float64 on purpose: synthetic cost profiles can push ov²
// past uint64 in the bias computation below, and integer wraparound
// there silently inverts the preference order.
func overheadOf(p vmm.Platform, entries uint64) float64 {
	if entries < 1 {
		entries = 1
	}
	return float64(p.CreateCost())/costAmortRuns +
		float64(p.EntryCost()+p.ExitCost())*float64(entries)
}

// CostModel scores backends by the Fig 5 create/entry/exit cycle costs
// against the image's observed service and guest-entry EWMAs. The
// placement bias of backend b for an image with smoothed service time
// svc and smoothed entry count e is
//
//	bias(b) = ov(b,e)² / (ov(b,e) + svc)
//
// where ov(b,e) is the backend's per-run overhead estimate — amortized
// create cost plus one entry/exit pair per guest entry. For a
// short-lived virtine (svc ≈ 0) the bias is the full overhead, so the
// cheap-create backend wins by the whole Fig 5 gap; for a long-lived one
// (svc >> ov) the bias vanishes, so the image amortizes its overhead
// anywhere and drifts to whichever backend is free — keeping the cheap
// backend's capacity for the runs that actually feel the difference. The
// entry multiplier is what makes a paravirt-style profile (expensive
// create, cheap entry/exit) win chatty images while KVM keeps the quiet
// ones — a genuinely non-dominated trade-off.
//
// The bias is computed entirely in float64: ov² at synthetic extreme
// profiles overflows uint64, which used to wrap and invert the ordering.
type CostModel struct{}

// Place implements Placer. Weights are 1/bias (see the package weight
// contract); every backend is eligible.
func (CostModel) Place(img ImageInfo, backends []BackendInfo) []float64 {
	out := make([]float64, len(backends))
	for i, b := range backends {
		ov := overheadOf(b.Platform, img.EntriesEWMA)
		bias := ov * ov / (ov + float64(img.SvcEWMA))
		out[i] = 1 / (bias + 1)
	}
	return out
}

// LeastLoaded balances queue pressure across backends: the bias of a
// backend is its expected wait — busy workers times the backend's
// smoothed service time, divided by its worker count — so tickets flow
// to the backend with the most free capacity, in the admission layer's
// weighted-fairness style (the weight of a backend falls as its load
// rises). With equal loads it degenerates to pure earliest-free-worker
// placement, which is itself balanced.
type LeastLoaded struct{}

// Place implements Placer.
func (LeastLoaded) Place(img ImageInfo, backends []BackendInfo) []float64 {
	out := make([]float64, len(backends))
	for i, b := range backends {
		workers := b.Workers
		if workers < 1 {
			workers = 1
		}
		wait := uint64(b.Busy) * b.SvcEWMA / uint64(workers)
		out[i] = 1 / float64(wait+1)
	}
	return out
}

// Bias converts a weight into the virtual-cycle placement bias the
// deterministic scheduler adds to a backend's earliest start; by the
// weight contract this is 1/weight, and 0 for the degenerate huge
// weights Static uses.
func Bias(weight float64) uint64 {
	if weight <= 0 {
		return ^uint64(0)
	}
	b := 1 / weight
	if b < 1 {
		return 0
	}
	return uint64(b)
}
