package placement

import (
	"testing"

	"repro/internal/vmm"
)

func fleet() []BackendInfo {
	return []BackendInfo{
		{Platform: vmm.KVM{}, Workers: 2},
		{Platform: vmm.HyperV{}, Workers: 2},
	}
}

func TestStaticPinsAndDefault(t *testing.T) {
	p := Static{Pins: map[string]string{"a": "hyper-v"}, Default: "kvm"}
	w := p.Place(ImageInfo{Name: "a"}, fleet())
	if w[0] > 0 || w[1] <= 0 {
		t.Fatalf("pinned image weights = %v, want hyper-v only", w)
	}
	w = p.Place(ImageInfo{Name: "b"}, fleet())
	if w[0] <= 0 || w[1] > 0 {
		t.Fatalf("defaulted image weights = %v, want kvm only", w)
	}
	open := Static{}
	w = open.Place(ImageInfo{Name: "c"}, fleet())
	if w[0] != 1 || w[1] != 1 {
		t.Fatalf("unconstrained weights = %v, want equal eligibility", w)
	}
}

func TestStaticAbsentPinIsIneligibleEverywhere(t *testing.T) {
	p := Static{Pins: map[string]string{"a": "xen"}}
	for _, w := range p.Place(ImageInfo{Name: "a"}, fleet()) {
		if w > 0 {
			t.Fatal("pin to an absent platform must yield no eligible backend")
		}
	}
}

func TestCostModelShortPrefersCheapCreate(t *testing.T) {
	w := CostModel{}.Place(ImageInfo{Name: "s", SvcEWMA: 0}, fleet())
	if w[0] <= w[1] {
		t.Fatalf("short-lived image weights = %v, want kvm (cheap create) preferred", w)
	}
	// The preference gap must shrink as the image's service time grows:
	// long-lived virtines amortize the Fig 5 overheads.
	shortGap := Bias(w[1]) - Bias(w[0])
	wl := CostModel{}.Place(ImageInfo{Name: "l", SvcEWMA: 50_000_000}, fleet())
	longGap := Bias(wl[1]) - Bias(wl[0])
	if longGap >= shortGap {
		t.Fatalf("bias gap did not shrink with service time: short %d, long %d", shortGap, longGap)
	}
}

func TestLeastLoadedPrefersFreeBackend(t *testing.T) {
	b := fleet()
	b[0].Busy, b[0].SvcEWMA = 2, 1_000_000
	b[1].Busy, b[1].SvcEWMA = 0, 1_000_000
	w := LeastLoaded{}.Place(ImageInfo{Name: "x"}, b)
	if w[1] <= w[0] {
		t.Fatalf("weights = %v, want the idle backend preferred", w)
	}
}

func TestPoliciesAreDeterministic(t *testing.T) {
	img := ImageInfo{Name: "d", SvcEWMA: 123_456}
	b := fleet()
	b[0].Busy, b[0].SvcEWMA = 1, 777
	for _, pl := range []Placer{Static{Default: "kvm"}, CostModel{}, LeastLoaded{}} {
		a := pl.Place(img, b)
		for i := 0; i < 64; i++ {
			c := pl.Place(img, b)
			for j := range a {
				if a[j] != c[j] {
					t.Fatalf("%T: weight %d diverged across calls", pl, j)
				}
			}
		}
	}
}

func TestBiasContract(t *testing.T) {
	if Bias(0) != ^uint64(0) || Bias(-1) != ^uint64(0) {
		t.Fatal("non-positive weights must be infinitely biased (ineligible)")
	}
	if Bias(1) != 1 || Bias(1e12) != 0 {
		t.Fatalf("Bias(1)=%d Bias(1e12)=%d", Bias(1), Bias(1e12))
	}
	if Bias(1.0/5000) != 5000 {
		t.Fatalf("Bias(1/5000) = %d, want 5000", Bias(1.0/5000))
	}
}
