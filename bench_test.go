// Package virtines_test holds the benchmark harness: one testing.B
// benchmark per table and figure in the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out (pooling, cleaning
// strategy, snapshotting, TLB, hypercall count).
//
// Benchmarks report `vcycles/op` (virtual cycles per operation on the
// calibrated clock) and `vus/op` (virtual microseconds) — the metrics the
// paper reports — alongside Go's wall-clock ns/op for the simulator
// itself.
//
// Run with: go test -bench=. -benchmem
package virtines_test

import (
	"fmt"
	"testing"

	"repro/internal/aes"
	"repro/internal/cpu"
	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/httpd"
	"repro/internal/hypercall"
	"repro/internal/js"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/vcc"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// report attaches the virtual-time metrics to b.
func report(b *testing.B, totalCycles uint64) {
	b.Helper()
	perOp := float64(totalCycles) / float64(b.N)
	b.ReportMetric(perOp, "vcycles/op")
	b.ReportMetric(cycles.Micros(uint64(perOp)), "vus/op")
}

// BenchmarkFig2ContextCreation regenerates Fig 2: lower bounds on
// execution-context creation.
func BenchmarkFig2ContextCreation(b *testing.B) {
	for _, base := range []vmm.Baseline{
		vmm.BaselineFunction, vmm.BaselinePthread, vmm.BaselineVMRun,
	} {
		b.Run(base.String(), func(b *testing.B) {
			noise := cycles.NewNoise(1)
			clk := cycles.NewClock()
			for i := 0; i < b.N; i++ {
				base.Measure(clk, noise, 1)
			}
			report(b, clk.Now())
		})
	}
	b.Run("KVM-create-hlt", func(b *testing.B) {
		img := guest.RealModeHalt()
		clk := cycles.NewClock()
		for i := 0; i < b.N; i++ {
			ctx := vmm.Create(img.MemBytes(), clk)
			if err := ctx.Load(img.Code, img.Origin, img.Entry, img.Mode); err != nil {
				b.Fatal(err)
			}
			if ex := ctx.Run(100); ex.Reason != cpu.ExitHalt {
				b.Fatalf("exit %+v", ex)
			}
		}
		report(b, clk.Now())
	})
}

// BenchmarkTable1BootBreakdown regenerates Table 1: the full minimal boot
// (real → protected → ident-map paging → long mode), reporting the
// dominant component as a metric.
func BenchmarkTable1BootBreakdown(b *testing.B) {
	w := wasp.New(wasp.WithPooling(false))
	img := guest.MinimalHalt()
	var total, ident uint64
	for i := 0; i < b.N; i++ {
		clk := cycles.NewClock()
		res, err := w.Run(img, wasp.RunConfig{}, clk)
		if err != nil {
			b.Fatal(err)
		}
		total += clk.Now()
		ident += res.BootEvents[cpu.EvCR3Load] - res.BootEvents[cpu.EvIdentMapStart]
	}
	report(b, total)
	b.ReportMetric(float64(ident)/float64(b.N), "identmap-vcycles/op")
}

// BenchmarkFig3ModeLatency regenerates Fig 3: fib(20) per processor mode.
func BenchmarkFig3ModeLatency(b *testing.B) {
	fib := func(n int) string {
		return `
	movi rdi, 20
	call f
	hlt
f:
	cmp rdi, 2
	jge r
	mov rax, rdi
	ret
r:
	push rdi
	sub rdi, 1
	call f
	pop rdi
	push rax
	sub rdi, 2
	call f
	pop rbx
	add rax, rbx
	ret
`
	}
	images := map[string]*guest.Image{
		"real16": guest.MustFromAsm("b16", ".bits 16\n.org 0x8000\n_start:\n"+fib(20)),
		"prot32": guest.MustFromAsm("b32", guest.WrapProtected(fib(20))),
		"long64": guest.MustFromAsm("b64x", guest.WrapLongMode(fib(20))),
	}
	for _, name := range []string{"real16", "prot32", "long64"} {
		img := images[name]
		b.Run(name, func(b *testing.B) {
			w := wasp.New()
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkFig4EchoMilestones regenerates Fig 4: one full echo exchange.
func BenchmarkFig4EchoMilestones(b *testing.B) {
	w := wasp.New()
	img := httpd.EchoImage()
	pol := httpd.EchoPolicy()
	req := []byte("GET / HTTP/1.0\r\n\r\n")
	var total uint64
	for i := 0; i < b.N; i++ {
		env := hypercall.NewEnv()
		env.NetIn = req
		clk := cycles.NewClock()
		if _, err := w.Run(img, wasp.RunConfig{Policy: pol, Env: env}, clk); err != nil {
			b.Fatal(err)
		}
		total += clk.Now()
	}
	report(b, total)
}

// BenchmarkFig8CreationLatency regenerates Fig 8's Wasp bars.
func BenchmarkFig8CreationLatency(b *testing.B) {
	img := guest.RealModeHalt()
	for _, mode := range []struct {
		name string
		opts []wasp.Option
	}{
		{"wasp-scratch", []wasp.Option{wasp.WithPooling(false)}},
		{"wasp+C", nil},
		{"wasp+CA", []wasp.Option{wasp.WithAsyncClean(true)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New(mode.opts...)
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkFig11FibScaling regenerates Fig 11 for representative n.
func BenchmarkFig11FibScaling(b *testing.B) {
	v, err := vcc.CompileFunc(`
virtine int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}`, "fib")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int64{0, 10, 20} {
		for _, snap := range []bool{false, true} {
			name := "fib"
			if snap {
				name += "+snapshot"
			}
			b.Run(benchName(name, n), func(b *testing.B) {
				w := wasp.New(wasp.WithSnapshotting(snap))
				cfg := wasp.RunConfig{
					Policy: v.Policy, Args: vcc.MarshalArgs(n),
					RetBytes: vcc.RetSize, Snapshot: snap,
				}
				if _, err := w.Run(v.Image, cfg, cycles.NewClock()); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var total uint64
				for i := 0; i < b.N; i++ {
					clk := cycles.NewClock()
					if _, err := w.Run(v.Image, cfg, clk); err != nil {
						b.Fatal(err)
					}
					total += clk.Now()
				}
				report(b, total)
			})
		}
	}
}

func benchName(prefix string, n int64) string {
	return prefix + "/n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkFig12ImageSize regenerates Fig 12 at three sizes.
func BenchmarkFig12ImageSize(b *testing.B) {
	base := guest.MinimalHalt()
	for _, size := range []struct {
		name string
		pad  int
	}{{"64KB", 64 << 10}, {"1MB", 1 << 20}, {"16MB", 16 << 20}} {
		b.Run(size.name, func(b *testing.B) {
			w := wasp.New(wasp.WithAsyncClean(true))
			img := base.WithPad(size.pad)
			if _, err := w.Run(img, wasp.RunConfig{Snapshot: true}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{Snapshot: true}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkFig13HTTPServer regenerates Fig 13.
func BenchmarkFig13HTTPServer(b *testing.B) {
	files := map[string][]byte{"/index.html": []byte("<html>bench</html>")}
	req := httpd.Request("/index.html")

	b.Run("native", func(b *testing.B) {
		srv := httpd.NewNativeFileServer(files)
		var total uint64
		for i := 0; i < b.N; i++ {
			clk := cycles.NewClock()
			if _, err := srv.Serve(req, clk); err != nil {
				b.Fatal(err)
			}
			total += clk.Now()
		}
		report(b, total)
	})
	for _, mode := range []struct {
		name string
		snap bool
	}{{"virtine", false}, {"virtine+snapshot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New()
			srv, err := httpd.NewFileServer(w, files)
			if err != nil {
				b.Fatal(err)
			}
			srv.Snapshot = mode.snap
			if _, err := srv.Serve(req, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := srv.Serve(req, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkFig14JavaScript regenerates Fig 14's bars.
func BenchmarkFig14JavaScript(b *testing.B) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	b.Run("native", func(b *testing.B) {
		var total uint64
		for i := 0; i < b.N; i++ {
			clk := cycles.NewClock()
			if _, err := js.NativeEncode(data, clk); err != nil {
				b.Fatal(err)
			}
			total += clk.Now()
		}
		report(b, total)
	})
	for _, variant := range js.Fig14Variants {
		b.Run(variant.Name, func(b *testing.B) {
			w := wasp.New()
			vm := js.NewVirtineJS(w, variant.Snapshot, variant.NoTeardown)
			if _, err := vm.Encode(data, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := vm.Encode(data, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkFig15Serverless regenerates a short Fig 15 trace per op.
func BenchmarkFig15Serverless(b *testing.B) {
	w := wasp.New()
	pattern := serverless.DefaultPattern(8)
	for i := 0; i < b.N; i++ {
		trace, err := serverless.RunFig15(w, pattern, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		s := serverless.Summarize(trace)
		if i == 0 {
			b.ReportMetric(s.VespidMeanP50, "vespid-p50-ms")
			b.ReportMetric(s.WhiskMeanP50, "whisk-p50-ms")
		}
	}
}

// BenchmarkSec64OpenSSL regenerates the §6.4 speed numbers at 16KB.
func BenchmarkSec64OpenSSL(b *testing.B) {
	w := wasp.New()
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	src := make([]byte, 16384)
	b.Run("native", func(b *testing.B) {
		c, _ := aes.New(key)
		var total uint64
		for i := 0; i < b.N; i++ {
			clk := cycles.NewClock()
			if _, err := aes.NativeEncrypt(c, src, iv, clk); err != nil {
				b.Fatal(err)
			}
			total += clk.Now()
		}
		report(b, total)
	})
	b.Run("virtine", func(b *testing.B) {
		vc, err := aes.NewVirtineCipher(w, key, iv)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vc.Encrypt(src, cycles.NewClock()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var total uint64
		for i := 0; i < b.N; i++ {
			clk := cycles.NewClock()
			if _, err := vc.Encrypt(src, clk); err != nil {
				b.Fatal(err)
			}
			total += clk.Now()
		}
		report(b, total)
	})
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationPooling isolates the shell pool's contribution.
func BenchmarkAblationPooling(b *testing.B) {
	img := guest.RealModeHalt()
	for _, mode := range []struct {
		name    string
		pooling bool
	}{{"pool-on", true}, {"pool-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New(wasp.WithPooling(mode.pooling))
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkAblationSnapshot isolates snapshotting for the vcc fib image.
func BenchmarkAblationSnapshot(b *testing.B) {
	v, err := vcc.CompileFunc(`
virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }`, "fib")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		snap bool
	}{{"snapshot-on", true}, {"snapshot-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New(wasp.WithSnapshotting(mode.snap))
			cfg := wasp.RunConfig{Policy: v.Policy, Args: vcc.MarshalArgs(1), RetBytes: vcc.RetSize, Snapshot: mode.snap}
			if _, err := w.Run(v.Image, cfg, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(v.Image, cfg, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkAblationCOWReset measures the copy-on-write reset (§7.2's
// anticipated optimization) against full snapshot restores for a 1 MB
// image: reset cost tracks dirtied pages, not image size.
func BenchmarkAblationCOWReset(b *testing.B) {
	src := guest.WrapLongMode(`
	out 0x08, rdi
	movi rbx, 0x6000
	load rax, [rbx]
	inc rax
	store [rbx], rax
	movi rdi, 0
	out 0x00, rdi
	hlt
`)
	for _, mode := range []struct {
		name string
		cow  bool
	}{{"full-restore", false}, {"cow-reset", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New(wasp.WithCOW(mode.cow), wasp.WithAsyncClean(true))
			img := guest.MustFromAsm("cow-bench", src).WithPad(1 << 20)
			cfg := wasp.RunConfig{Snapshot: true}
			for i := 0; i < 2; i++ {
				if _, err := w.Run(img, cfg, cycles.NewClock()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, cfg, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkAblationTLB measures the MMU's translation cache: long-mode
// fib with and without the TLB.
func BenchmarkAblationTLB(b *testing.B) {
	img := guest.MustFromAsm("tlb-fib", guest.WrapLongMode(`
	movi rdi, 15
	call f
	hlt
f:
	cmp rdi, 2
	jge r
	mov rax, rdi
	ret
r:
	push rdi
	sub rdi, 1
	call f
	pop rdi
	push rax
	sub rdi, 2
	call f
	pop rbx
	add rax, rbx
	ret
`))
	for _, mode := range []struct {
		name  string
		noTLB bool
	}{{"tlb-on", false}, {"tlb-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				ctx := vmm.Create(img.MemBytes(), clk)
				if err := ctx.Load(img.Code, img.Origin, img.Entry, img.Mode); err != nil {
					b.Fatal(err)
				}
				ctx.CPU.NoTLB = mode.noTLB
				start := clk.Now()
				if ex := ctx.Run(10_000_000); ex.Reason != cpu.ExitHalt {
					b.Fatalf("exit %+v", ex)
				}
				total += clk.Now() - start
			}
			report(b, total)
		})
	}
}

// BenchmarkAblationHypercallCount shows the per-exit cost: a guest making
// k hypercalls.
func BenchmarkAblationHypercallCount(b *testing.B) {
	mk := func(k int) *guest.Image {
		body := ""
		for i := 0; i < k; i++ {
			body += "\tmovi rdi, 1\n\tout 0x0B, rdi\n"
		}
		return guest.MustFromAsm(benchName("hc", int64(k)), guest.WrapLongMode(body+"\thlt\n"))
	}
	for _, k := range []int{0, 1, 8} {
		img := mk(k)
		b.Run(benchName("calls", int64(k)), func(b *testing.B) {
			w := wasp.New()
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkSimulator measures the raw simulator: interpreted guest
// instructions per second (wall clock), useful for sizing experiments.
func BenchmarkSimulator(b *testing.B) {
	img := guest.MustFromAsm("sim", guest.WrapLongMode(`
	movi rcx, 10000
l:
	dec rcx
	jnz l
	hlt
`))
	ctx := vmm.Create(img.MemBytes(), cycles.NewClock())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.Load(img.Code, img.Origin, img.Entry, img.Mode); err != nil {
			b.Fatal(err)
		}
		if ex := ctx.Run(10_000_000); ex.Reason != cpu.ExitHalt {
			b.Fatalf("exit %+v", ex)
		}
	}
	b.ReportMetric(float64(ctx.CPU.Retired), "instructions")
}

// BenchmarkSchedulerSaturation drives concurrent Run calls through the
// unified scheduler at increasing worker counts. The pooled, snapshotted
// runtime state is shared by all workers, so this is the contention
// benchmark for the sharded shell pools: wall-clock ns/op must not
// degrade as workers are added (a single runtime-wide mutex would make
// it collapse), and vmakespan/op — the virtual-time cost of the
// schedule — shrinks with the pool width.
func BenchmarkSchedulerSaturation(b *testing.B) {
	body := `
	movi rcx, 2000
sl:
	dec rcx
	jnz sl
	movi rdi, 0
	out 0x00, rdi
	hlt
`
	for _, workers := range []int{1, 2, 4, 8} {
		img := guest.MustFromAsm(benchName("satfib", int64(workers)), guest.WrapLongMode(body))
		b.Run(benchName("workers", int64(workers)), func(b *testing.B) {
			w := wasp.New()
			s := sched.New(w, workers)
			defer s.Close()
			// Warm the shell pool directly so steady state is measured
			// without polluting the scheduler's worker clocks or counts.
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			tickets := make([]*sched.Ticket, b.N)
			for i := range tickets {
				tickets[i] = s.Submit(img, wasp.RunConfig{})
			}
			if err := sched.WaitAll(tickets...); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(cycles.Micros(s.Makespan())/float64(b.N), "vmakespan-us/op")
			b.ReportMetric(float64(s.Completed()), "completed")
		})
	}
}

// BenchmarkSubmitBatch isolates the scheduler's submission-path
// overhead: a burst of B trivial tasks submitted one Submit at a time
// (B lock acquisitions, B ticket allocations, B wakes) versus one
// SubmitBatch (one lock acquisition, one ticket slab, one wake). The
// timed region is the submission only — service runs untimed between
// iterations — so ns/op divided by the burst size is the per-ticket
// dispatch overhead; batch must come out measurably lower at bursts
// >= 64.
func BenchmarkSubmitBatch(b *testing.B) {
	task := func(clk *cycles.Clock) (*wasp.Result, error) { return nil, nil }
	for _, burst := range []int{64, 256} {
		for _, mode := range []string{"single", "batch"} {
			b.Run(fmt.Sprintf("%s/burst=%d", mode, burst), func(b *testing.B) {
				w := wasp.New()
				s := sched.New(w, 4, sched.WithQueueCap(4*burst))
				defer s.Close()
				reqs := make([]sched.Request, burst)
				for j := range reqs {
					reqs[j] = sched.Request{Fn: task}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var tickets []*sched.Ticket
					if mode == "batch" {
						tickets = s.SubmitBatch(reqs)
					} else {
						tickets = make([]*sched.Ticket, burst)
						for j := range tickets {
							tickets[j] = s.SubmitFn(task)
						}
					}
					b.StopTimer()
					if err := sched.WaitAll(tickets...); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*burst), "ns/ticket")
			})
		}
	}
}

// BenchmarkWaspCARelease isolates the release-path win of true async
// cleaning (Fig 8): under Wasp+C a reused shell pays its zeroing on the
// measured path (at the next acquire); under Wasp+CA release hands the
// dirty shell to the background cleaner and no ZeroCost ever lands on
// the run clock. vcycles/op must come out lower for wasp+CA.
func BenchmarkWaspCARelease(b *testing.B) {
	img := guest.MinimalHalt()
	for _, mode := range []struct {
		name string
		opts []wasp.Option
	}{
		{"wasp+C", nil},
		{"wasp+CA", []wasp.Option{wasp.WithAsyncClean(true)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			w := wasp.New(mode.opts...)
			if _, err := w.Run(img, wasp.RunConfig{}, cycles.NewClock()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var total uint64
			for i := 0; i < b.N; i++ {
				clk := cycles.NewClock()
				if _, err := w.Run(img, wasp.RunConfig{}, clk); err != nil {
					b.Fatal(err)
				}
				total += clk.Now()
			}
			report(b, total)
		})
	}
}

// BenchmarkHypercallAllocs measures host-side allocations on the
// hypercall data path: a guest making 8 write() hypercalls (each a
// guestMem.ReadGuest of the payload) plus an 8-byte Result.Ret copy-out.
// The scratch-buffer ReadGuest and the inline Ret buffer keep allocs/op
// flat in the number of hypercalls; before those changes every ReadGuest
// and every copy-out allocated (see BENCH_interp.json for the recorded
// before/after counts).
func BenchmarkHypercallAllocs(b *testing.B) {
	body := ""
	for i := 0; i < 8; i++ {
		body += "\tmovi rdi, 1\n\tmovi rsi, 0x8000\n\tmovi rdx, 64\n\tout 0x01, rax\n"
	}
	body += "\tmovi rdi, 0\n\tout 0x00, rdi\n\thlt\n"
	img := guest.MustFromAsm("hc-allocs", guest.WrapLongMode(body))
	w := wasp.New()
	cfg := wasp.RunConfig{
		Policy:   hypercall.MaskOf(hypercall.NrWrite),
		RetBytes: 8,
	}
	mk := func() wasp.RunConfig {
		c := cfg
		c.Env = hypercall.NewEnv()
		return c
	}
	if _, err := w.Run(img, mk(), cycles.NewClock()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(img, mk(), cycles.NewClock()); err != nil {
			b.Fatal(err)
		}
	}
}
