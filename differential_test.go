// Differential determinism: the predecoded block-execution engine must
// produce bit-identical virtual-cycle results to the legacy per-step
// interpreter — same Result.Cycles, Retired, marks, boot events, and exit
// state — across the asm corpus, the vcc fib image, the JS isolate, and
// the AES workload, over repeated runs (cold boot, pooled shells,
// snapshot restores, COW resets).
package virtines_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/aes"
	"repro/internal/cycles"
	"repro/internal/guest"
	"repro/internal/httpd"
	"repro/internal/hypercall"
	"repro/internal/js"
	"repro/internal/vcc"
	"repro/internal/wasp"
)

// resultKey is the comparable projection of a wasp.Result.
type resultKey struct {
	Cycles     uint64
	ExitCode   uint64
	Ret        string
	DataOut    string
	NetOut     string
	Stdout     string
	Marks      []hypercall.Mark
	Entries    uint64
	IOExits    uint64
	Retired    uint64
	BootEvents [8]uint64
	GuestEntry uint64
	SnapUsed   bool
	COWPages   int
}

func keyOf(r *wasp.Result) resultKey {
	k := resultKey{
		Cycles: r.Cycles, ExitCode: r.ExitCode,
		Ret: string(r.Ret), DataOut: string(r.DataOut),
		NetOut: string(r.NetOut), Stdout: string(r.Stdout),
		Marks: append([]hypercall.Mark(nil), r.Marks...),
		Entries: r.Entries, IOExits: r.IOExits, Retired: r.Retired,
		GuestEntry: r.GuestEntry, SnapUsed: r.SnapshotUsed, COWPages: r.COWPages,
	}
	copy(k.BootEvents[:], r.BootEvents[:])
	return k
}

// diffRun drives the same image+config sequence through a cached and a
// legacy Wasp and demands identical results run by run.
func diffRun(t *testing.T, name string, opts []wasp.Option, img *guest.Image,
	mkCfg func(i int) wasp.RunConfig, runs int) {
	t.Helper()
	fast := wasp.New(opts...)
	slow := wasp.New(append(append([]wasp.Option(nil), opts...), wasp.WithLegacyInterp(true))...)
	for i := 0; i < runs; i++ {
		fclk, sclk := cycles.NewClock(), cycles.NewClock()
		fres, ferr := fast.Run(img, mkCfg(i), fclk)
		sres, serr := slow.Run(img, mkCfg(i), sclk)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("%s run %d: error divergence: cached=%v legacy=%v", name, i, ferr, serr)
		}
		if ferr != nil {
			if ferr.Error() != serr.Error() {
				t.Fatalf("%s run %d: fault divergence:\n cached: %v\n legacy: %v", name, i, ferr, serr)
			}
			continue
		}
		if fclk.Now() != sclk.Now() {
			t.Fatalf("%s run %d: clock divergence: cached %d, legacy %d",
				name, i, fclk.Now(), sclk.Now())
		}
		fk, sk := keyOf(fres), keyOf(sres)
		if !reflect.DeepEqual(fk, sk) {
			t.Fatalf("%s run %d: result divergence:\n cached: %+v\n legacy: %+v", name, i, fk, sk)
		}
	}
}

// corpusProgram generates one random-but-halting program in the style of
// the asm round-trip corpus: straight-line ALU work, guarded divides,
// balanced stack traffic, memory ops confined to the heap scratch page,
// and one bounded counting loop.
func corpusProgram(rng *rand.Rand) string {
	regs := []string{"rax", "rbx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"}
	reg := func() string { return regs[rng.Intn(len(regs))] }
	body := "\tmovi rbp, 0x5000\n"
	for _, r := range regs {
		body += fmt.Sprintf("\tmovi %s, %d\n", r, rng.Intn(1<<12))
	}
	n := 10 + rng.Intn(25)
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			body += fmt.Sprintf("\tadd %s, %s\n", reg(), reg())
		case 1:
			body += fmt.Sprintf("\tsub %s, %d\n", reg(), rng.Intn(1<<10))
		case 2:
			body += fmt.Sprintf("\tmul %s, %s\n", reg(), reg())
		case 3:
			r := reg()
			body += fmt.Sprintf("\tmovi %s, %d\n\tdiv %s, %s\n", r, 1+rng.Intn(9), reg(), r)
		case 4:
			body += fmt.Sprintf("\tand %s, %d\n", reg(), rng.Intn(1<<12))
		case 5:
			body += fmt.Sprintf("\txor %s, %s\n", reg(), reg())
		case 6:
			body += fmt.Sprintf("\tshl %s, %d\n", reg(), rng.Intn(8))
		case 7:
			body += fmt.Sprintf("\tshrv %s, %s\n", reg(), reg())
		case 8:
			r := reg()
			body += fmt.Sprintf("\tpush %s\n\tinc %s\n\tpop %s\n", r, r, r)
		case 9:
			body += fmt.Sprintf("\tstore [rbp+%d], %s\n", 8*rng.Intn(64), reg())
		case 10:
			body += fmt.Sprintf("\tload %s, [rbp+%d]\n", reg(), 8*rng.Intn(64))
		case 11:
			body += fmt.Sprintf("\tstoreb [rbp+%d], %s\n", rng.Intn(512), reg())
		case 12:
			body += fmt.Sprintf("\tcmp %s, %s\n", reg(), reg())
		case 13:
			body += fmt.Sprintf("\tneg %s\n", reg())
		}
	}
	// One bounded loop so the corpus exercises back-edges and flags.
	body += fmt.Sprintf(`	movi rcx, %d
vx_corpus_loop:
	add rax, rcx
	dec rcx
	jnz vx_corpus_loop
	hlt
`, 3+rng.Intn(60))
	return body
}

func TestDifferentialAsmCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		body := corpusProgram(rng)
		images := map[string]*guest.Image{
			"real16": guest.MustFromAsm(fmt.Sprintf("corpus16-%d", trial),
				".bits 16\n.org 0x8000\n_start:\n"+body),
			"prot32": guest.MustFromAsm(fmt.Sprintf("corpus32-%d", trial),
				guest.WrapProtected(body)),
			"long64": guest.MustFromAsm(fmt.Sprintf("corpus64-%d", trial),
				guest.WrapLongMode(body)),
		}
		for mode, img := range images {
			diffRun(t, fmt.Sprintf("corpus-%s-%d", mode, trial), nil, img,
				func(int) wasp.RunConfig { return wasp.RunConfig{} }, 3)
		}
	}
}

func TestDifferentialFib(t *testing.T) {
	v, err := vcc.CompileFunc(`
virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }`, "fib")
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []bool{false, true} {
		for _, cow := range []bool{false, true} {
			if cow && !snap {
				continue
			}
			opts := []wasp.Option{wasp.WithSnapshotting(snap), wasp.WithCOW(cow)}
			name := fmt.Sprintf("fib-snap=%v-cow=%v", snap, cow)
			diffRun(t, name, opts, v.Image, func(i int) wasp.RunConfig {
				return wasp.RunConfig{
					Policy: v.Policy, Args: vcc.MarshalArgs(int64(8 + i)),
					RetBytes: vcc.RetSize, Snapshot: snap,
				}
			}, 4)
		}
	}
}

func TestDifferentialEchoMarks(t *testing.T) {
	img := httpd.EchoImage()
	pol := httpd.EchoPolicy()
	diffRun(t, "echo", nil, img, func(int) wasp.RunConfig {
		env := hypercall.NewEnv()
		env.NetIn = []byte("GET / HTTP/1.0\r\n\r\n")
		return wasp.RunConfig{Policy: pol, Env: env}
	}, 3)
}

func TestDifferentialJS(t *testing.T) {
	data := make([]byte, 96)
	for i := range data {
		data[i] = byte(i * 13)
	}
	for _, variant := range js.Fig14Variants {
		fastW := wasp.New()
		slowW := wasp.New(wasp.WithLegacyInterp(true))
		fv := js.NewVirtineJS(fastW, variant.Snapshot, variant.NoTeardown)
		sv := js.NewVirtineJS(slowW, variant.Snapshot, variant.NoTeardown)
		for i := 0; i < 3; i++ {
			fclk, sclk := cycles.NewClock(), cycles.NewClock()
			fout, ferr := fv.Encode(data, fclk)
			sout, serr := sv.Encode(data, sclk)
			if ferr != nil || serr != nil {
				t.Fatalf("js %s run %d: cached err=%v legacy err=%v", variant.Name, i, ferr, serr)
			}
			if fout != sout {
				t.Fatalf("js %s run %d: output divergence", variant.Name, i)
			}
			if fclk.Now() != sclk.Now() {
				t.Fatalf("js %s run %d: clock divergence: cached %d, legacy %d",
					variant.Name, i, fclk.Now(), sclk.Now())
			}
		}
	}
}

func TestDifferentialAES(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 7)
	}
	fastW := wasp.New()
	slowW := wasp.New(wasp.WithLegacyInterp(true))
	fc, err := aes.NewVirtineCipher(fastW, key, iv)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := aes.NewVirtineCipher(slowW, key, iv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fclk, sclk := cycles.NewClock(), cycles.NewClock()
		fout, ferr := fc.Encrypt(src, fclk)
		sout, serr := sc.Encrypt(src, sclk)
		if ferr != nil || serr != nil {
			t.Fatalf("aes run %d: cached err=%v legacy err=%v", i, ferr, serr)
		}
		if string(fout) != string(sout) {
			t.Fatalf("aes run %d: ciphertext divergence", i)
		}
		if fclk.Now() != sclk.Now() {
			t.Fatalf("aes run %d: clock divergence: cached %d, legacy %d", i, fclk.Now(), sclk.Now())
		}
	}
}

func TestDifferentialBootStub(t *testing.T) {
	diffRun(t, "minimal-halt", nil, guest.MinimalHalt(),
		func(int) wasp.RunConfig { return wasp.RunConfig{} }, 3)
	diffRun(t, "minimal-halt32", nil, guest.MinimalHaltProtected(),
		func(int) wasp.RunConfig { return wasp.RunConfig{} }, 3)
}

// COW self-modifying regression: a guest that snapshots, patches its own
// code, re-executes the patched instruction, and exits must — on the next
// run's COW reset — execute the restored original bytes, not a decode
// cached from the patched bytes. (The copy-back loop re-invalidates each
// restored page; write-time invalidation alone cannot cover decodes
// re-created after the dirtying store.)
func TestDifferentialCOWSelfModify(t *testing.T) {
	// The first call must observe the restored original bytes (40); the
	// guest then patches the callee to 2 and calls again, so a correct
	// run exits with 40 + 2 = 42. A stale decode surviving the COW
	// reset would execute the previous run's patched callee on the
	// FIRST call — before the guest re-patches — and exit with 2 + 2 = 4.
	// (The re-decode of the patched callee happens after the last store
	// to its page, so the stale entries persist to run end.)
	src := guest.WrapLongMode(`
	out 0x08, rax
	call vx_smc_far
	mov rsi, rbx
	movi rdi, vx_smc_far
	movi rax, 2
	store [rdi+2], rax
	call vx_smc_far
	add rsi, rbx
	mov rdi, rsi
	out 0x00, rdi
	hlt
vx_smc_far:
	movi rbx, 40
	ret
`)
	img := guest.MustFromAsm("cow-smc", src)
	opts := []wasp.Option{wasp.WithCOW(true)}
	fast := wasp.New(opts...)
	slow := wasp.New(append(append([]wasp.Option(nil), opts...), wasp.WithLegacyInterp(true))...)
	for i := 0; i < 4; i++ {
		fclk, sclk := cycles.NewClock(), cycles.NewClock()
		cfg := wasp.RunConfig{Snapshot: true}
		fres, ferr := fast.Run(img, cfg, fclk)
		sres, serr := slow.Run(img, cfg, sclk)
		if ferr != nil || serr != nil {
			t.Fatalf("run %d: cached err=%v legacy err=%v", i, ferr, serr)
		}
		if fres.ExitCode != 42 || sres.ExitCode != 42 {
			t.Fatalf("run %d: exit codes cached=%d legacy=%d, want 42 (stale decode after COW reset)",
				i, fres.ExitCode, sres.ExitCode)
		}
		if !reflect.DeepEqual(keyOf(fres), keyOf(sres)) {
			t.Fatalf("run %d: result divergence:\n cached: %+v\n legacy: %+v",
				i, keyOf(fres), keyOf(sres))
		}
		if fclk.Now() != sclk.Now() {
			t.Fatalf("run %d: clock divergence: cached %d, legacy %d", i, fclk.Now(), sclk.Now())
		}
	}
}
