// Placement determinism: virtual-mode multi-backend scheduling must be
// fully reproducible — same trace, fleet, and policy give bit-identical
// per-ticket cycle counts, worker/platform assignments, and makespans —
// and, like every other subsystem, identical virtual results under the
// cached and legacy interpreters.
package virtines_test

import (
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/sched"
	"repro/internal/serverless"
	"repro/internal/vmm"
	"repro/internal/wasp"
)

// placementPolicies are the three shipped policies, exercised on a 2+2
// KVM/Hyper-V split fleet.
func placementPolicies() map[string]placement.Placer {
	return map[string]placement.Placer{
		"static": placement.Static{Pins: map[string]string{
			serverless.PlacementShortImage().Name: "kvm",
			serverless.PlacementLongImage().Name:  "hyper-v",
		}},
		"least-loaded": placement.LeastLoaded{},
		"cost-model":   placement.CostModel{},
	}
}

// ticketKey is the comparable projection of one placed ticket.
type ticketKey struct {
	Worker      int
	Platform    string
	Start, Done uint64
	Cycles      uint64
	Image       string
}

// runPlacementOnce drives the mixed trace through a fresh split-fleet
// scheduler and projects every ticket.
func runPlacementOnce(t *testing.T, pl placement.Placer, legacy bool) ([]ticketKey, uint64) {
	t.Helper()
	opts := []wasp.Option{wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{})}
	if legacy {
		opts = append(opts, wasp.WithLegacyInterp(true))
	}
	w := wasp.New(opts...)
	s := sched.NewVirtual(w, 4,
		sched.WithWorkerPlatforms(vmm.KVM{}, vmm.HyperV{}),
		sched.WithPlacer(pl))
	defer s.Close()
	tickets := s.SubmitBatchAt(serverless.PlacementTrace(48, 8))
	out := make([]ticketKey, len(tickets))
	for i, tk := range tickets {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		out[i] = ticketKey{
			Worker: tk.Worker, Platform: tk.Platform,
			Start: tk.Start, Done: tk.Done,
			Cycles: res.Cycles, Image: tk.Image,
		}
	}
	return out, s.Makespan()
}

// Same seed trace, same policy, fresh runtimes: bit-identical Cycles,
// Makespan, and per-worker assignment, twice over.
func TestPlacementPoliciesDeterministic(t *testing.T) {
	for name, pl := range placementPolicies() {
		a, ma := runPlacementOnce(t, pl, false)
		b, mb := runPlacementOnce(t, pl, false)
		if ma != mb {
			t.Fatalf("%s: makespan diverged across runs: %d vs %d", name, ma, mb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: ticket %d diverged:\n run1: %+v\n run2: %+v", name, i, a[i], b[i])
			}
		}
	}
}

// The full RunPlacementMix reports — latencies, per-backend slices,
// Jain — must also reproduce exactly.
func TestPlacementReportDeterministic(t *testing.T) {
	for name, pl := range placementPolicies() {
		run := func() *serverless.PlacementReport {
			w := wasp.New(wasp.WithPlatforms(vmm.KVM{}, vmm.HyperV{}))
			rep, err := serverless.RunPlacementMix(w, name,
				[]vmm.Platform{vmm.KVM{}, vmm.HyperV{}, vmm.KVM{}, vmm.HyperV{}}, pl, 60, 10)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: placement report diverged:\n run1: %+v\n run2: %+v", name, a, b)
		}
	}
}

// The cached and legacy interpreters must agree on every placed
// ticket's virtual outcome — the placement layer inherits the
// differential guarantee of the rest of the stack.
func TestPlacementDifferentialLegacyInterp(t *testing.T) {
	for name, pl := range placementPolicies() {
		fast, mf := runPlacementOnce(t, pl, false)
		slow, ms := runPlacementOnce(t, pl, true)
		if mf != ms {
			t.Fatalf("%s: makespan divergence: cached %d, legacy %d", name, mf, ms)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("%s: ticket %d divergence:\n cached: %+v\n legacy: %+v", name, i, fast[i], slow[i])
			}
		}
	}
}

// The Migrating wrapper is stateful (pins, streaks, an LRU), so it does
// not live in the shared placementPolicies map — each run gets a fresh
// instance over a fresh fleet, and the sequential decision stream must
// still reproduce bit-identically, including the committed homes and
// migration count.
func TestMigratingPlacementDeterministic(t *testing.T) {
	run := func(legacy bool) ([]ticketKey, uint64, uint64) {
		pl := placement.NewMigrating(placement.CostModel{}, 3)
		keys, makespan := runPlacementOnce(t, pl, legacy)
		return keys, makespan, pl.Migrations()
	}
	a, ma, fa := run(false)
	b, mb, fb := run(false)
	if ma != mb || fa != fb {
		t.Fatalf("makespan/flips diverged across runs: %d/%d vs %d/%d", ma, fa, mb, fb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ticket %d diverged:\n run1: %+v\n run2: %+v", i, a[i], b[i])
		}
	}
	l, ml, fl := run(true)
	if ma != ml || fa != fl {
		t.Fatalf("cached/legacy divergence: makespan %d/%d, flips %d/%d", ma, ml, fa, fl)
	}
	for i := range a {
		if a[i] != l[i] {
			t.Fatalf("ticket %d cached/legacy divergence:\n cached: %+v\n legacy: %+v", i, a[i], l[i])
		}
	}
}

// Static pinning is an invariant, not a preference: every short ran on
// KVM, every long on Hyper-V, across the whole trace.
func TestPlacementStaticPinInvariant(t *testing.T) {
	keys, _ := runPlacementOnce(t, placementPolicies()["static"], false)
	shortName := serverless.PlacementShortImage().Name
	for i, k := range keys {
		want := "hyper-v"
		if k.Image == shortName {
			want = "kvm"
		}
		if k.Platform != want {
			t.Fatalf("ticket %d (%s) ran on %s, pinned to %s", i, k.Image, k.Platform, want)
		}
	}
}
